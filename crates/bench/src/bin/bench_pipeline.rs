//! Times the zero-copy batch pipeline against the allocating marshalling it
//! replaced, and emits `BENCH_pipeline.json`.
//!
//! Three sections, each gated on bitwise equality before anything is timed:
//!
//! * `fit_epoch_marshal` — assembling one epoch's shuffled mini-batches:
//!   clone-the-samples + `Seq::from_samples` (the old `fit` inner loop)
//!   versus a prebuilt [`BatchPlan`] gathering into reused buffers. Only the
//!   marshalling is timed — the optimiser math is identical on both sides
//!   and dominates a real epoch.
//! * `warm_predict` — the old `predict` marshal (`Seq::from_samples`, boxed
//!   per-step outputs, `to_samples` clones) versus `predict_into` writing
//!   into one flat caller buffer through the persistent eval arena.
//! * `anomaly_score` — full-series reconstruction scoring: the old
//!   `reconstruction` + `column_vector` + `predict` path versus
//!   `AnomalyFilter::score` staging windows straight off the series.
//!
//! Usage: `cargo run --release --bin bench_pipeline [output-path] [--smoke]`
//!
//! `--smoke` runs tiny shapes with few repetitions and skips the JSON dump —
//! the CI gate that the zero-copy and allocating paths agree bitwise.

use evfad_core::anomaly::{AnomalyFilter, FilterConfig};
use evfad_core::nn::{
    Activation, BatchPlan, Dense, Lstm, RepeatVector, Sample, Seq, SeqBuf, Sequential,
};
use evfad_core::tensor::{alloc_stats, Matrix};
use evfad_core::timeseries::windows;
use std::hint::black_box;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Model configurations (the paper's shapes; dropout layers omitted as in
// `bench_train_step` — they are identity at inference and allocate nothing).
// ---------------------------------------------------------------------------

struct Config {
    name: &'static str,
    batch: usize,
    seq_len: usize,
    hidden: (usize, usize),
    autoencoding: bool,
}

fn forecaster_config(batch: usize, seq_len: usize, hidden: usize) -> Config {
    Config {
        name: "forecaster",
        batch,
        seq_len,
        hidden: (hidden, 10),
        autoencoding: false,
    }
}

fn autoencoder_config(batch: usize, seq_len: usize, h1: usize, h2: usize) -> Config {
    Config {
        name: "autoencoder",
        batch,
        seq_len,
        hidden: (h1, h2),
        autoencoding: true,
    }
}

fn build_model(cfg: &Config) -> Sequential {
    let (h1, h2) = cfg.hidden;
    if cfg.autoencoding {
        Sequential::new(42)
            .with(Lstm::new(1, h1, true))
            .with(Lstm::new(h1, h2, false))
            .with(RepeatVector::new(cfg.seq_len))
            .with(Lstm::new(h2, h2, true))
            .with(Lstm::new(h2, h1, true))
            .with(Dense::new(h1, 1, Activation::Linear))
    } else {
        Sequential::new(42)
            .with(Lstm::new(1, h1, false))
            .with(Dense::new(h1, h2, Activation::Relu))
            .with(Dense::new(h2, 1, Activation::Linear))
    }
}

fn make_samples(cfg: &Config, n: usize) -> Vec<Sample> {
    (0..n)
        .map(|s| {
            let input = Matrix::from_fn(cfg.seq_len, 1, |t, _| ((s * 13 + t) as f64 * 0.23).sin());
            let target = if cfg.autoencoding {
                input.clone()
            } else {
                Matrix::from_fn(1, 1, |_, _| ((s * 13 + cfg.seq_len) as f64 * 0.23).sin())
            };
            Sample::new(input, target)
        })
        .collect()
}

/// Deterministic Fisher–Yates shuffle (the bench must not depend on the
/// model's private shuffle RNG — any fixed order exercises both marshals
/// identically).
fn shuffled_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    order
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct SectionResult {
    config: &'static str,
    detail: String,
    baseline_ms: f64,
    zero_copy_ms: f64,
    baseline_allocs: u64,
    zero_copy_allocs: u64,
    bitwise_identical: bool,
}

impl SectionResult {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.zero_copy_ms
    }

    fn alloc_reduction(&self) -> f64 {
        self.baseline_allocs as f64 / self.zero_copy_allocs.max(1) as f64
    }
}

fn print_result(section: &str, r: &SectionResult) {
    println!(
        "{section:<18} {:<12} {}  baseline {:.3} ms / {} allocs  zero-copy {:.3} ms / {} allocs  speedup {:.2}x  alloc-ratio {:.1}x  bitwise={}",
        r.config,
        r.detail,
        r.baseline_ms,
        r.baseline_allocs,
        r.zero_copy_ms,
        r.zero_copy_allocs,
        r.speedup(),
        r.alloc_reduction(),
        r.bitwise_identical,
    );
}

// ---------------------------------------------------------------------------
// Section 1: fit-epoch marshalling.
// ---------------------------------------------------------------------------

/// The old `fit` inner loop's marshal: clone every picked sample, then build
/// a fresh time-major batch from the clones.
fn baseline_epoch_marshal(samples: &[Sample], order: &[usize], batch: usize) {
    for chunk in order.chunks(batch) {
        let inputs: Vec<Matrix> = chunk.iter().map(|&i| samples[i].input.clone()).collect();
        let targets: Vec<Matrix> = chunk.iter().map(|&i| samples[i].target.clone()).collect();
        let bi = Seq::from_samples(&inputs);
        let bt = Seq::from_samples(&targets);
        black_box((bi.len(), bt.len()));
    }
}

/// The new `fit` inner loop's marshal: gather index chunks through the
/// prebuilt plan into two reused buffer pairs (full batches and the ragged
/// tail), exactly as `Sequential::fit` stages them.
fn zero_copy_epoch_marshal(
    plan: &BatchPlan,
    order: &[usize],
    batch: usize,
    full: &mut (SeqBuf, SeqBuf),
    tail: &mut (SeqBuf, SeqBuf),
) {
    for chunk in order.chunks(batch) {
        let (bin, btg) = if chunk.len() == batch {
            &mut *full
        } else {
            &mut *tail
        };
        plan.gather_into(chunk, bin, btg);
        black_box((bin.seq().len(), btg.seq().len()));
    }
}

fn run_fit_epoch_marshal(cfg: &Config, n_samples: usize, reps: usize) -> SectionResult {
    let samples = make_samples(cfg, n_samples);
    let order = shuffled_order(n_samples, 0x5EED);
    let plan = BatchPlan::new(&samples);
    let mut full = (SeqBuf::new(), SeqBuf::new());
    let mut tail = (SeqBuf::new(), SeqBuf::new());

    // Bitwise gate: every gathered batch equals the clone + from_samples
    // marshal of the same index chunk.
    let mut bitwise_identical = true;
    for chunk in order.chunks(cfg.batch) {
        let inputs: Vec<Matrix> = chunk.iter().map(|&i| samples[i].input.clone()).collect();
        let targets: Vec<Matrix> = chunk.iter().map(|&i| samples[i].target.clone()).collect();
        let ref_in = Seq::from_samples(&inputs);
        let ref_tgt = Seq::from_samples(&targets);
        let (bin, btg) = if chunk.len() == cfg.batch {
            &mut full
        } else {
            &mut tail
        };
        plan.gather_into(chunk, bin, btg);
        for t in 0..ref_in.len() {
            bitwise_identical &= bin.seq().step(t).as_slice() == ref_in.step(t).as_slice();
        }
        for t in 0..ref_tgt.len() {
            bitwise_identical &= btg.seq().step(t).as_slice() == ref_tgt.step(t).as_slice();
        }
    }
    assert!(
        bitwise_identical,
        "{}: gathered batches diverged from clone + from_samples",
        cfg.name
    );

    // Allocation counts for one warm epoch marshal.
    baseline_epoch_marshal(&samples, &order, cfg.batch);
    zero_copy_epoch_marshal(&plan, &order, cfg.batch, &mut full, &mut tail);
    let before = alloc_stats();
    baseline_epoch_marshal(&samples, &order, cfg.batch);
    let baseline_allocs = alloc_stats().since(&before).matrices;
    let before = alloc_stats();
    zero_copy_epoch_marshal(&plan, &order, cfg.batch, &mut full, &mut tail);
    let zero_copy_allocs = alloc_stats().since(&before).matrices;

    // Interleaved timing (see `bench_train_step` for the rationale).
    let mut baseline_samples_ms = Vec::with_capacity(reps);
    let mut zero_copy_samples_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        baseline_epoch_marshal(&samples, &order, cfg.batch);
        baseline_samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        zero_copy_epoch_marshal(&plan, &order, cfg.batch, &mut full, &mut tail);
        zero_copy_samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }

    SectionResult {
        config: cfg.name,
        detail: format!("B={} T={} N={}", cfg.batch, cfg.seq_len, n_samples),
        baseline_ms: median(baseline_samples_ms),
        zero_copy_ms: median(zero_copy_samples_ms),
        baseline_allocs,
        zero_copy_allocs,
        bitwise_identical,
    }
}

// ---------------------------------------------------------------------------
// Section 2: warm predict.
// ---------------------------------------------------------------------------

/// The old `Sequential::predict` marshal, reproduced verbatim: chunk,
/// `from_samples`, boxed forward outputs, `to_samples` clones.
fn baseline_predict(model: &mut Sequential, inputs: &[Matrix]) -> Vec<Matrix> {
    let mut outputs = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(256) {
        let batch = Seq::from_samples(chunk);
        let out = model.forward(&batch, false);
        outputs.extend(out.to_samples());
    }
    outputs
}

fn run_warm_predict(cfg: &Config, n_sequences: usize, reps: usize) -> SectionResult {
    let mut model = build_model(cfg);
    let inputs: Vec<Matrix> = (0..n_sequences)
        .map(|s| Matrix::from_fn(cfg.seq_len, 1, |t, _| ((s * 13 + t) as f64 * 0.23).sin()))
        .collect();
    let mut flat = Vec::new();

    // Bitwise gate: the flat buffer must hold exactly the old path's
    // outputs, sample-major.
    let reference = baseline_predict(&mut model, &inputs);
    let (t_out, f_out) = model.predict_into(&inputs, &mut flat);
    let mut bitwise_identical = flat.len() == n_sequences * t_out * f_out;
    for (i, r) in reference.iter().enumerate() {
        let got = &flat[i * t_out * f_out..(i + 1) * t_out * f_out];
        bitwise_identical &= r.as_slice() == got;
    }
    assert!(
        bitwise_identical,
        "{}: predict_into diverged from the allocating predict",
        cfg.name
    );

    // Warm both paths, then count allocations of one call each.
    let _ = baseline_predict(&mut model, &inputs);
    let _ = model.predict_into(&inputs, &mut flat);
    let before = alloc_stats();
    let _ = baseline_predict(&mut model, &inputs);
    let baseline_allocs = alloc_stats().since(&before).matrices;
    let before = alloc_stats();
    let _ = model.predict_into(&inputs, &mut flat);
    let zero_copy_allocs = alloc_stats().since(&before).matrices;

    let mut baseline_samples_ms = Vec::with_capacity(reps);
    let mut zero_copy_samples_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        black_box(baseline_predict(&mut model, &inputs).len());
        baseline_samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        black_box(model.predict_into(&inputs, &mut flat));
        zero_copy_samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }

    SectionResult {
        config: cfg.name,
        detail: format!("n={} T={}", n_sequences, cfg.seq_len),
        baseline_ms: median(baseline_samples_ms),
        zero_copy_ms: median(zero_copy_samples_ms),
        baseline_allocs,
        zero_copy_allocs,
        bitwise_identical,
    }
}

// ---------------------------------------------------------------------------
// Section 3: full-series anomaly scoring.
// ---------------------------------------------------------------------------

fn sine(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
        .collect()
}

/// The old `AnomalyFilter::score` reproduced verbatim against a clone of the
/// fitted model: materialised reconstruction windows, one column-vector
/// matrix per window, the allocating `predict`, then the min-over-estimates
/// sweep.
fn baseline_score(model: &mut Sequential, series: &[f64], seq_len: usize) -> Vec<f64> {
    let wins = windows::reconstruction(series, seq_len);
    let inputs: Vec<Matrix> = wins.iter().map(|w| Matrix::column_vector(w)).collect();
    let recon = model.predict(&inputs);
    let mut best = vec![f64::INFINITY; series.len()];
    for (start, r) in recon.iter().enumerate() {
        let last_idx = start + seq_len - 1;
        let err_last = r[(seq_len - 1, 0)] - series[last_idx];
        best[last_idx] = best[last_idx].min(err_last * err_last);
        let err_first = r[(0, 0)] - series[start];
        best[start] = best[start].min(err_first * err_first);
    }
    for (idx, b) in best.iter_mut().enumerate() {
        if !b.is_finite() {
            let start = idx.min(series.len() - seq_len);
            let err = recon[start][(idx - start, 0)] - series[idx];
            *b = err * err;
        }
    }
    best
}

fn run_anomaly_score(
    filter_cfg: FilterConfig,
    train_len: usize,
    series_len: usize,
    reps: usize,
) -> SectionResult {
    let seq_len = filter_cfg.seq_len;
    let mut filter = AnomalyFilter::new(filter_cfg);
    filter.fit(&sine(train_len)).expect("bench filter fit");
    let mut base_model = filter.model().expect("fitted").clone();
    let mut series = sine(series_len);
    // Perturb a few points so the scores are not trivially symmetric.
    for (i, v) in series.iter_mut().enumerate().step_by(97) {
        *v += 0.11 * ((i + 1) as f64 * 0.7).sin();
    }

    // Bitwise gate over every per-point score.
    let reference = baseline_score(&mut base_model, &series, seq_len);
    let scores = filter.score(&series).expect("score");
    let bitwise_identical = reference.len() == scores.len()
        && reference
            .iter()
            .zip(&scores)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bitwise_identical,
        "anomaly: zero-copy scores diverged from the allocating path"
    );

    // Warm both paths, then count allocations of one full-series score each.
    let _ = baseline_score(&mut base_model, &series, seq_len);
    let _ = filter.score(&series).expect("score");
    let before = alloc_stats();
    let _ = baseline_score(&mut base_model, &series, seq_len);
    let baseline_allocs = alloc_stats().since(&before).matrices;
    let before = alloc_stats();
    let _ = filter.score(&series).expect("score");
    let zero_copy_allocs = alloc_stats().since(&before).matrices;

    let mut baseline_samples_ms = Vec::with_capacity(reps);
    let mut zero_copy_samples_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        black_box(baseline_score(&mut base_model, &series, seq_len).len());
        baseline_samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        black_box(filter.score(&series).expect("score").len());
        zero_copy_samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }

    SectionResult {
        config: "autoencoder",
        detail: format!("series={series_len} T={seq_len}"),
        baseline_ms: median(baseline_samples_ms),
        zero_copy_ms: median(zero_copy_samples_ms),
        baseline_allocs,
        zero_copy_allocs,
        bitwise_identical,
    }
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

fn json_entry(r: &SectionResult) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"config\": \"{}\",\n",
            "      \"detail\": \"{}\",\n",
            "      \"baseline_ms\": {:.4},\n",
            "      \"zero_copy_ms\": {:.4},\n",
            "      \"speedup\": {:.2},\n",
            "      \"baseline_matrix_allocs\": {},\n",
            "      \"zero_copy_matrix_allocs\": {},\n",
            "      \"alloc_reduction\": {:.1},\n",
            "      \"bitwise_identical\": {}\n",
            "    }}"
        ),
        r.config,
        r.detail,
        r.baseline_ms,
        r.zero_copy_ms,
        r.speedup(),
        r.baseline_allocs,
        r.zero_copy_allocs,
        r.alloc_reduction(),
        r.bitwise_identical,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let (configs, n_samples, n_sequences, reps) = if smoke {
        (
            vec![forecaster_config(4, 6, 8), autoencoder_config(4, 6, 8, 4)],
            18,
            20,
            3,
        )
    } else {
        (
            vec![
                forecaster_config(32, 24, 50),
                autoencoder_config(32, 24, 50, 25),
            ],
            512,
            300,
            11,
        )
    };

    println!(
        "pipeline bench: {} (reps={reps})",
        if smoke { "smoke" } else { "full" }
    );

    let marshal: Vec<SectionResult> = configs
        .iter()
        .map(|c| run_fit_epoch_marshal(c, n_samples, reps.max(25)))
        .collect();
    for r in &marshal {
        print_result("fit_epoch_marshal", r);
    }

    let predict: Vec<SectionResult> = configs
        .iter()
        .map(|c| run_warm_predict(c, n_sequences, reps))
        .collect();
    for r in &predict {
        print_result("warm_predict", r);
    }

    // The paper's autoencoder shape; training truncated to one epoch — the
    // scoring cost under test does not depend on how converged the model is.
    let anomaly_cfg = if smoke {
        FilterConfig::fast(6)
    } else {
        FilterConfig {
            epochs: 1,
            patience: 1,
            train_stride: 8,
            ..FilterConfig::paper(7)
        }
    };
    let (train_len, series_len) = if smoke { (120, 150) } else { (600, 800) };
    let anomaly = vec![run_anomaly_score(anomaly_cfg, train_len, series_len, reps)];
    for r in &anomaly {
        print_result("anomaly_score", r);
    }

    if smoke {
        println!("smoke ok: zero-copy and allocating paths bitwise identical");
        return;
    }

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let section = |name: &str, rs: &[SectionResult]| {
        format!(
            "  \"{}\": [\n{}\n  ]",
            name,
            rs.iter().map(json_entry).collect::<Vec<_>>().join(",\n")
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"host_cpus\": {},\n  \"reps\": {},\n{},\n{},\n{}\n}}\n",
        host_cpus,
        reps,
        section("fit_epoch_marshal", &marshal),
        section("warm_predict", &predict),
        section("anomaly_score", &anomaly),
    );
    std::fs::write(&out_path, json).expect("write bench results");
    println!("wrote {out_path}");
}
