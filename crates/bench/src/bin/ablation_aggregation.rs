//! Ablation: aggregation rules under a poisoned client.
//!
//! Escalates the paper's data-plane threat model to a compromised client
//! submitting a scaled-up weight update, and measures the global model's
//! mean R² across clients for FedAvg vs the robust rules.

use evfad_bench::BenchOpts;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::federated::{Aggregator, LocalUpdate};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::nn::TrainConfig;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: robust aggregation"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let prepared: Vec<PreparedClient> = clients
        .iter()
        .map(|c| {
            PreparedClient::prepare(c.zone.label(), &c.demand, cfg.seq_len, cfg.train_fraction)
                .expect("prepare")
        })
        .collect();

    // Honest local updates (one per zone, plus a twin for Krum headroom).
    let train_cfg = TrainConfig {
        epochs: cfg.epochs_per_round,
        batch_size: cfg.batch_size,
        ..TrainConfig::default()
    };
    let mut updates: Vec<LocalUpdate> = Vec::new();
    for p in &prepared {
        let mut model = build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed);
        model.fit(&p.train, &train_cfg).expect("fit");
        updates.push(LocalUpdate {
            client_id: p.label.clone(),
            weights: model.weights(),
            sample_count: p.train.len(),
            train_loss: 0.0,
            duration: std::time::Duration::ZERO,
            simulated_extra_seconds: 0.0,
        });
    }
    let mut twin = updates[0].clone();
    twin.client_id = "102-twin".into();
    updates.push(twin);

    println!(
        "{:<14} {:>12} {:>12}",
        "aggregator", "clean R2", "poisoned R2"
    );
    for agg in [
        Aggregator::FedAvg,
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 1 },
        Aggregator::Krum { byzantine: 1 },
    ] {
        let mean_r2 = |ups: &[LocalUpdate]| -> f64 {
            let global = agg.aggregate(ups).expect("aggregate");
            let mut model = build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed);
            model.set_weights(&global).expect("weights");
            prepared
                .iter()
                .map(|p| p.evaluate_raw(&mut model).map(|e| e.r2).unwrap_or(f64::NAN))
                .sum::<f64>()
                / prepared.len() as f64
        };
        let clean = mean_r2(&updates);
        let mut poisoned = updates.clone();
        let mut evil = poisoned[1].clone();
        evil.client_id = "compromised".into();
        for w in &mut evil.weights {
            *w = w.scale(50.0);
        }
        poisoned.push(evil);
        let bad = mean_r2(&poisoned);
        println!("{:<14} {:>12.4} {:>12.4}", agg.name(), clean, bad);
    }
}
