//! Times the zero-serialization comms path against the JSON metering it
//! replaced, gates every codec byte-exactly, and emits `BENCH_comms.json`.
//!
//! Three sections:
//!
//! * `codec` — decode gates, checked before anything is timed: EVFD
//!   (full-precision weights) must round-trip **bitwise**; EVQ8 (8-bit
//!   quantized) must re-encode to the identical payload with dequantization
//!   error bounded by half a quantization step; EVSK (top-k sparse delta)
//!   must re-encode identically and reconstruct the same update. The O(1)
//!   `*_encoded_size` arithmetic must equal the real payload length — that
//!   equality is what lets the round loop meter without serialising.
//! * `metering` — races one federated round-schedule of traffic accounting
//!   (broadcast to every client + one uplink per client, paper schedule)
//!   through the legacy `MeteredChannel::record` (serialises the full
//!   weight set to JSON per message) versus the new path (encode the
//!   broadcast once per round, O(1) arithmetic per uplink). The new path is
//!   asserted to perform **zero** JSON serialisations via the process-wide
//!   `serde_json::serialization_count` counter.
//! * `compression` — wire bytes per update for None / Quant8 / TopKDelta
//!   on the paper's forecaster, with the Quant8 ratio gated at ≈8x.
//!
//! Usage: `cargo run --release --bin bench_comms [output-path] [--smoke]`
//!
//! `--smoke` runs a tiny model with few repetitions and skips the JSON
//! dump — the CI gate that the codecs and the counter stay honest.

use evfad_core::federated::compression::{QuantizedUpdate, SparseDelta};
use evfad_core::federated::transport::MeteredChannel;
use evfad_core::federated::wire;
use evfad_core::federated::{Aggregator, CodecScratch, LocalUpdate};
use evfad_core::nn::forecaster_model;
use evfad_core::tensor::{alloc_stats, Matrix};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Paper-shaped model weights, perturbed so no tensor is degenerate-range.
fn model_weights(lstm_units: usize) -> Vec<Matrix> {
    forecaster_model(lstm_units, 42)
        .weights()
        .iter()
        .map(|m| {
            let vals: Vec<f64> = m
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, v)| v + 0.01 * ((i as f64) * 0.37).sin())
                .collect();
            Matrix::from_vec(m.rows(), m.cols(), vals)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Section 1: codec gates.
// ---------------------------------------------------------------------------

struct CodecResult {
    mode: &'static str,
    payload_bytes: usize,
    ratio_vs_full: f64,
    max_error: f64,
    exact: bool,
}

fn gate_codecs(weights: &[Matrix], global: &[Matrix], k: usize, full: bool) -> Vec<CodecResult> {
    let raw = wire::encode_weights(weights);
    assert_eq!(
        raw.len(),
        wire::encoded_size(weights),
        "EVFD size arithmetic diverged from the real payload"
    );
    let decoded = wire::decode_weights(&raw).expect("EVFD decode");
    assert_eq!(decoded, *weights, "EVFD round trip must be bitwise");
    let none = CodecResult {
        mode: "none",
        payload_bytes: raw.len(),
        ratio_vs_full: 1.0,
        max_error: 0.0,
        exact: true,
    };

    let q = QuantizedUpdate::quantize(weights);
    let qp = wire::encode_quantized(&q);
    assert_eq!(
        qp.len(),
        wire::quantized_encoded_size(&q),
        "EVQ8 size arithmetic diverged from the real payload"
    );
    let qd = wire::decode_quantized(&qp).expect("EVQ8 decode");
    assert_eq!(
        wire::encode_quantized(&qd),
        qp,
        "EVQ8 decode → re-encode must be the identity on payloads"
    );
    let restored = qd.dequantize();
    let mut max_error = 0.0f64;
    for (r, w) in restored.iter().zip(weights) {
        for (a, b) in r.as_slice().iter().zip(w.as_slice()) {
            max_error = max_error.max((a - b).abs());
        }
    }
    let max_half_step = weights
        .iter()
        .map(|m| {
            let (lo, hi) = m
                .as_slice()
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), v| (l.min(*v), h.max(*v)));
            (hi - lo) / 255.0 / 2.0
        })
        .fold(0.0f64, f64::max);
    assert!(
        max_error <= max_half_step + 1e-12,
        "EVQ8 error {max_error} exceeds half a quantization step {max_half_step}"
    );
    let q_ratio = raw.len() as f64 / qp.len() as f64;
    if full {
        assert!(
            q_ratio > 7.0 && q_ratio < 8.0,
            "Quant8 ratio {q_ratio} strayed from ≈8x on paper-shaped tensors"
        );
    }
    let quant = CodecResult {
        mode: "quant8",
        payload_bytes: qp.len(),
        ratio_vs_full: q_ratio,
        max_error,
        exact: false,
    };

    let d = SparseDelta::top_k(weights, global, k);
    let sp = wire::encode_sparse(&d);
    assert_eq!(
        sp.len(),
        wire::sparse_encoded_size(&d),
        "EVSK size arithmetic diverged from the real payload"
    );
    let sd = wire::decode_sparse(&sp).expect("EVSK decode");
    assert_eq!(
        wire::encode_sparse(&sd),
        sp,
        "EVSK decode → re-encode must be the identity on payloads"
    );
    assert_eq!(
        sd.apply(global),
        d.apply(global),
        "EVSK decoded delta must reconstruct the same update"
    );
    assert!(sp.len() < raw.len(), "top-k must shrink the payload");
    let sparse = CodecResult {
        mode: "topk",
        payload_bytes: sp.len(),
        ratio_vs_full: raw.len() as f64 / sp.len() as f64,
        max_error: 0.0,
        exact: false,
    };

    vec![none, quant, sparse]
}

// ---------------------------------------------------------------------------
// Section 2: metering race.
// ---------------------------------------------------------------------------

/// The pre-PR-5 accounting: serialise every payload to JSON to learn its
/// size — once per broadcast recipient, once per uplink.
fn baseline_metering(weights: &[Matrix], clients: usize, rounds: usize) -> usize {
    let channel = MeteredChannel::new();
    for _ in 0..rounds {
        for _ in 0..clients {
            channel.record(weights); // broadcast copy
        }
        for _ in 0..clients {
            channel.record_attempts(weights, 1); // uplink
        }
    }
    channel.totals().bytes
}

/// The new path: encode the broadcast once per round (reusing one buffer),
/// meter recipients by its length, and price uplinks by O(1) arithmetic.
fn wire_metering(weights: &[Matrix], clients: usize, rounds: usize) -> usize {
    let channel = MeteredChannel::new();
    let mut buf = wire::BytesMut::new();
    for _ in 0..rounds {
        wire::encode_weights_into(&mut buf, weights);
        let broadcast_len = buf.len();
        for _ in 0..clients {
            channel.record_bytes(broadcast_len);
        }
        let uplink = wire::encoded_size(weights);
        for _ in 0..clients {
            channel.record_attempts_bytes(uplink, 1);
        }
    }
    channel.totals().bytes
}

struct MeteringResult {
    json_ms: f64,
    wire_ms: f64,
    json_bytes: usize,
    wire_bytes: usize,
    json_serializations: u64,
    wire_serializations: u64,
}

fn race_metering(weights: &[Matrix], clients: usize, rounds: usize, reps: usize) -> MeteringResult {
    // Warm both paths, then take the serialisation census of one pass each.
    let json_bytes = baseline_metering(weights, clients, rounds);
    let wire_bytes = wire_metering(weights, clients, rounds);
    let before = serde_json::serialization_count();
    let _ = baseline_metering(weights, clients, rounds);
    let json_serializations = serde_json::serialization_count() - before;
    let before = serde_json::serialization_count();
    let _ = wire_metering(weights, clients, rounds);
    let wire_serializations = serde_json::serialization_count() - before;
    assert_eq!(
        wire_serializations, 0,
        "the wire metering path serialised JSON — the zero-serialization claim regressed"
    );
    assert_eq!(
        json_serializations,
        (2 * clients * rounds) as u64,
        "the legacy path must serialise once per message"
    );
    // Binary payloads are strictly smaller than their JSON renderings.
    assert!(wire_bytes < json_bytes);

    let mut json_ms = Vec::with_capacity(reps);
    let mut wire_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        black_box(baseline_metering(weights, clients, rounds));
        json_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        black_box(wire_metering(weights, clients, rounds));
        wire_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }

    MeteringResult {
        json_ms: median(json_ms),
        wire_ms: median(wire_ms),
        json_bytes,
        wire_bytes,
        json_serializations,
        wire_serializations,
    }
}

// ---------------------------------------------------------------------------
// Section 3: allocation-free compressed-uplink fast path (schema v2).
// ---------------------------------------------------------------------------

struct FastpathResult {
    mode: &'static str,
    payload_bytes: usize,
    fused_mb_s: f64,
    materialized_mb_s: f64,
    speedup: f64,
    encode_mb_s: f64,
}

/// Per-client weights: the shared model nudged by a client-specific signal
/// so every payload is distinct but deterministically reproducible.
fn client_weights(weights: &[Matrix], c: usize) -> Vec<Matrix> {
    weights
        .iter()
        .map(|m| {
            let vals: Vec<f64> = m
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, v)| v + 1e-3 * (((i + 31 * c) as f64) * 0.61).cos())
                .collect();
            Matrix::from_vec(m.rows(), m.cols(), vals)
        })
        .collect()
}

/// Median-of-reps throughput for `pass`, in MB/s of `bytes_per_pass` input.
fn mb_per_s<T>(
    bytes_per_pass: usize,
    inner: usize,
    reps: usize,
    mut pass: impl FnMut() -> T,
) -> f64 {
    black_box(pass()); // warm caches and buffers before timing
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            black_box(pass());
        }
        times.push(start.elapsed().as_secs_f64());
    }
    (bytes_per_pass * inner) as f64 / median(times) / 1e6
}

/// One full warm codec round: scratch-encode both compressed formats and
/// decode both straight back into an existing weight set. After the cold
/// round has grown every buffer, repeats of this must allocate **zero**
/// matrix buffers — that is the fast path's contract.
fn codec_round(
    weights: &[Matrix],
    global: &[Matrix],
    k: usize,
    scratch: &mut CodecScratch,
    qbuf: &mut wire::BytesMut,
    sbuf: &mut wire::BytesMut,
    decoded: &mut Vec<Matrix>,
) -> usize {
    QuantizedUpdate::quantize_into(weights, &mut scratch.quant);
    wire::encode_quantized_into(qbuf, &scratch.quant);
    scratch.quant.dequantize_into(decoded);
    SparseDelta::top_k_into(weights, global, k, &mut scratch.picked, &mut scratch.sparse);
    wire::encode_sparse_into(sbuf, &scratch.sparse);
    scratch.sparse.apply_into(global, decoded);
    qbuf.len() + sbuf.len()
}

fn assert_warm_rounds_alloc_free(weights: &[Matrix], global: &[Matrix], k: usize) {
    let mut scratch = CodecScratch::default();
    let mut qbuf = wire::BytesMut::new();
    let mut sbuf = wire::BytesMut::new();
    let mut decoded = global.to_vec();
    // Cold round: scratch tensors, frame buffers, and the decode target
    // all take their final shapes here.
    codec_round(
        weights,
        global,
        k,
        &mut scratch,
        &mut qbuf,
        &mut sbuf,
        &mut decoded,
    );
    let before = alloc_stats();
    let mut touched = 0usize;
    for _ in 0..3 {
        touched += codec_round(
            weights,
            global,
            k,
            &mut scratch,
            &mut qbuf,
            &mut sbuf,
            &mut decoded,
        );
    }
    black_box(touched);
    let delta = alloc_stats().since(&before);
    assert_eq!(
        delta.matrices, 0,
        "warm codec rounds allocated {} matrix buffers — the scratch-reuse fast path regressed",
        delta.matrices
    );
}

/// Races the fused decode-into-fold (`ingest_quantized` / `ingest_topk`)
/// against the materializing path (decode the payload, reconstruct the full
/// `Vec<Matrix>`, then `ingest`). Gated bitwise-identical always; the
/// throughput floor (fused ≥ 1.5× materializing) is enforced in full runs.
fn race_fastpath(
    weights: &[Matrix],
    global: &[Matrix],
    clients: usize,
    k: usize,
    reps: usize,
    inner: usize,
    full: bool,
) -> Vec<FastpathResult> {
    let ids: Vec<String> = (0..clients).map(|c| format!("client-{c}")).collect();
    let per_client: Vec<Vec<Matrix>> = (0..clients).map(|c| client_weights(weights, c)).collect();
    let raw_bytes = clients * wire::encoded_size(weights);
    let total = (100 * clients) as f64;
    let update = |id: &str, weights: Vec<Matrix>| LocalUpdate {
        client_id: id.to_string(),
        weights,
        sample_count: 100,
        train_loss: 0.0,
        duration: Duration::ZERO,
        simulated_extra_seconds: 0.0,
    };

    // --- Quant8 ---
    let q_payloads: Vec<Vec<u8>> = per_client
        .iter()
        .map(|w| wire::encode_quantized(&QuantizedUpdate::quantize(w)).to_vec())
        .collect();
    let q_bytes: usize = q_payloads.iter().map(Vec::len).sum();
    let fused_quant = || {
        let mut agg = Aggregator::FedAvg
            .streaming(total, clients)
            .expect("FedAvg streams");
        for (id, p) in ids.iter().zip(&q_payloads) {
            agg.ingest_quantized(id, 100, p).expect("fused ingest");
        }
        agg.finish().expect("finish")
    };
    let materialized_quant = || {
        let mut agg = Aggregator::FedAvg
            .streaming(total, clients)
            .expect("FedAvg streams");
        for (id, p) in ids.iter().zip(&q_payloads) {
            let decoded = wire::decode_quantized(p).expect("EVQ8 decode").dequantize();
            agg.ingest(&update(id, decoded)).expect("ingest");
        }
        agg.finish().expect("finish")
    };
    assert_eq!(
        wire::encode_weights(&fused_quant()),
        wire::encode_weights(&materialized_quant()),
        "fused quantized fold diverged from decode-then-ingest"
    );
    let fused_mb_s = mb_per_s(q_bytes, inner, reps, fused_quant);
    let materialized_mb_s = mb_per_s(q_bytes, inner, reps, materialized_quant);
    let encode_mb_s = {
        let mut scratch = CodecScratch::default();
        let mut buf = wire::BytesMut::new();
        mb_per_s(raw_bytes, inner, reps, move || {
            let mut len = 0usize;
            for w in &per_client {
                QuantizedUpdate::quantize_into(w, &mut scratch.quant);
                wire::encode_quantized_into(&mut buf, &scratch.quant);
                len += buf.len();
            }
            len
        })
    };
    let quant = FastpathResult {
        mode: "quant8",
        payload_bytes: q_bytes / clients,
        fused_mb_s,
        materialized_mb_s,
        speedup: fused_mb_s / materialized_mb_s,
        encode_mb_s,
    };

    // --- TopKDelta ---
    let per_client: Vec<Vec<Matrix>> = (0..clients).map(|c| client_weights(weights, c)).collect();
    let s_payloads: Vec<Vec<u8>> = per_client
        .iter()
        .map(|w| wire::encode_sparse(&SparseDelta::top_k(w, global, k)).to_vec())
        .collect();
    let s_bytes: usize = s_payloads.iter().map(Vec::len).sum();
    let fused_topk = || {
        let mut agg = Aggregator::FedAvg
            .streaming(total, clients)
            .expect("FedAvg streams");
        for (id, p) in ids.iter().zip(&s_payloads) {
            agg.ingest_topk(id, 100, global, p).expect("fused ingest");
        }
        agg.finish().expect("finish")
    };
    let materialized_topk = || {
        let mut agg = Aggregator::FedAvg
            .streaming(total, clients)
            .expect("FedAvg streams");
        for (id, p) in ids.iter().zip(&s_payloads) {
            let decoded = wire::decode_sparse(p).expect("EVSK decode").apply(global);
            agg.ingest(&update(id, decoded)).expect("ingest");
        }
        agg.finish().expect("finish")
    };
    assert_eq!(
        wire::encode_weights(&fused_topk()),
        wire::encode_weights(&materialized_topk()),
        "fused top-k fold diverged from decode-then-ingest"
    );
    let fused_mb_s = mb_per_s(s_bytes, inner, reps, fused_topk);
    let materialized_mb_s = mb_per_s(s_bytes, inner, reps, materialized_topk);
    let encode_mb_s = {
        let mut scratch = CodecScratch::default();
        let mut buf = wire::BytesMut::new();
        mb_per_s(raw_bytes, inner, reps, move || {
            let mut len = 0usize;
            for w in &per_client {
                SparseDelta::top_k_into(w, global, k, &mut scratch.picked, &mut scratch.sparse);
                wire::encode_sparse_into(&mut buf, &scratch.sparse);
                len += buf.len();
            }
            len
        })
    };
    let topk = FastpathResult {
        mode: "topk",
        payload_bytes: s_bytes / clients,
        fused_mb_s,
        materialized_mb_s,
        speedup: fused_mb_s / materialized_mb_s,
        encode_mb_s,
    };

    // Floors: quant8 carries the headline ≥1.5x decode-path claim (the
    // materializing path pays a full decode pass plus a fresh model
    // allocation per update that the fused fold skips entirely). Top-k's
    // dominant cost — the dense base fold — is shared by both paths, so
    // its ceiling is structurally near parity; it is gated at no material
    // regression (0.9, leaving headroom for timer noise around 1.0x).
    let results = vec![quant, topk];
    if full {
        for (r, floor) in results.iter().zip([1.5, 0.9]) {
            assert!(
                r.speedup >= floor,
                "fused {} decode+ingest came in at {:.2}x the materializing path — below the {floor}x floor",
                r.mode,
                r.speedup
            );
        }
    }
    results
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_comms.json".to_string());

    // Paper schedule: 3 zones, 5 federated rounds, LSTM(50) forecaster.
    let (lstm_units, clients, rounds, k, reps) = if smoke {
        (8, 3, 2, 32, 3)
    } else {
        (50, 3, 5, 512, 21)
    };

    println!(
        "comms bench: {} (LSTM({lstm_units}), {clients} clients x {rounds} rounds, reps={reps})",
        if smoke { "smoke" } else { "full" }
    );

    let weights = model_weights(lstm_units);
    let global = forecaster_model(lstm_units, 42).weights();

    let codecs = gate_codecs(&weights, &global, k, !smoke);
    for c in &codecs {
        println!(
            "codec {:<8} payload {:>8} B  ratio {:>5.2}x  max_error {:.3e}  exact={}",
            c.mode, c.payload_bytes, c.ratio_vs_full, c.max_error, c.exact
        );
    }

    let metering = race_metering(&weights, clients, rounds, reps);
    println!(
        "metering          json {:.3} ms / {} B / {} serializations   wire {:.3} ms / {} B / {} serializations   speedup {:.1}x",
        metering.json_ms,
        metering.json_bytes,
        metering.json_serializations,
        metering.wire_ms,
        metering.wire_bytes,
        metering.wire_serializations,
        metering.json_ms / metering.wire_ms,
    );

    assert_warm_rounds_alloc_free(&weights, &global, k);
    println!("fastpath          warm codec rounds: 0 matrix allocations");
    let inner = if smoke { 2 } else { 8 };
    let fastpath = race_fastpath(&weights, &global, clients, k, reps, inner, !smoke);
    for f in &fastpath {
        println!(
            "fastpath {:<8} fused {:>8.1} MB/s   materialized {:>8.1} MB/s   speedup {:>4.2}x   encode {:>8.1} MB/s",
            f.mode, f.fused_mb_s, f.materialized_mb_s, f.speedup, f.encode_mb_s
        );
    }

    if smoke {
        println!("smoke ok: codecs byte-exact, metering path JSON-free, fused fold bitwise, warm rounds allocation-free");
        return;
    }

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let codec_entries: Vec<String> = codecs
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"mode\": \"{}\",\n",
                    "      \"payload_bytes\": {},\n",
                    "      \"ratio_vs_full\": {:.2},\n",
                    "      \"max_error\": {:.6e},\n",
                    "      \"exact\": {}\n",
                    "    }}"
                ),
                c.mode, c.payload_bytes, c.ratio_vs_full, c.max_error, c.exact
            )
        })
        .collect();
    let fastpath_entries: Vec<String> = fastpath
        .iter()
        .map(|f| {
            format!(
                concat!(
                    "      {{\n",
                    "        \"mode\": \"{}\",\n",
                    "        \"payload_bytes\": {},\n",
                    "        \"fused_decode_ingest_mb_s\": {:.1},\n",
                    "        \"materialized_decode_ingest_mb_s\": {:.1},\n",
                    "        \"decode_speedup\": {:.2},\n",
                    "        \"encode_mb_s\": {:.1}\n",
                    "      }}"
                ),
                f.mode,
                f.payload_bytes,
                f.fused_mb_s,
                f.materialized_mb_s,
                f.speedup,
                f.encode_mb_s
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"comms\",\n",
            "  \"schema\": 2,\n",
            "  \"host_cpus\": {},\n",
            "  \"reps\": {},\n",
            "  \"model\": \"forecaster LSTM({})\",\n",
            "  \"schedule\": {{ \"clients\": {}, \"rounds\": {} }},\n",
            "  \"codec\": [\n{}\n  ],\n",
            "  \"metering\": {{\n",
            "    \"json_ms\": {:.4},\n",
            "    \"wire_ms\": {:.4},\n",
            "    \"speedup\": {:.1},\n",
            "    \"json_bytes\": {},\n",
            "    \"wire_bytes\": {},\n",
            "    \"bytes_ratio\": {:.2},\n",
            "    \"json_serializations\": {},\n",
            "    \"wire_serializations\": {}\n",
            "  }},\n",
            "  \"fastpath\": {{\n",
            "    \"warm_round_matrix_allocs\": 0,\n",
            "    \"modes\": [\n{}\n    ]\n",
            "  }}\n",
            "}}\n"
        ),
        host_cpus,
        reps,
        lstm_units,
        clients,
        rounds,
        codec_entries.join(",\n"),
        metering.json_ms,
        metering.wire_ms,
        metering.json_ms / metering.wire_ms,
        metering.json_bytes,
        metering.wire_bytes,
        metering.json_bytes as f64 / metering.wire_bytes as f64,
        metering.json_serializations,
        metering.wire_serializations,
        fastpath_entries.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench results");
    println!("wrote {out_path}");
}
