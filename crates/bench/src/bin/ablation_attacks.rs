//! Ablation: detection quality across attack vectors.
//!
//! The paper's detector targets sustained volume spikes (§II-B) and defers
//! other vectors to future work (§III-G). This bench trains one filter per
//! zone and evaluates it against the DDoS baseline plus four alternative
//! vectors, printing a detection table per vector.

use evfad_bench::BenchOpts;
use evfad_core::anomaly::{AnomalyFilter, DetectionReport};
use evfad_core::attack::vectors::{inject_vector, AttackVector};
use evfad_core::attack::{DdosConfig, DdosInjector};
use evfad_core::data::ShenzhenGenerator;
use evfad_core::timeseries::MinMaxScaler;

/// Named attack generator: `(label, series ⨯ seed → outcome)`.
type AttackFn = Box<dyn Fn(&[f64], u64) -> evfad_core::attack::AttackOutcome>;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: attack vectors"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();

    // One fitted filter per zone (trained on clean data, as in the paper).
    let mut filters = Vec::new();
    let mut scalers = Vec::new();
    for (i, c) in clients.iter().enumerate() {
        let scaler = MinMaxScaler::fit(&c.demand).expect("scaler");
        let mut filter_cfg = cfg.filter.clone();
        filter_cfg.seed = cfg.seed + i as u64;
        let mut filter = AnomalyFilter::new(filter_cfg);
        filter
            .fit(&scaler.transform(&c.demand))
            .expect("filter fit");
        filters.push(filter);
        scalers.push(scaler);
    }

    let vectors: Vec<(&str, AttackFn)> = vec![
        (
            "ddos_volume_spikes",
            Box::new(|s, seed| DdosInjector::new(DdosConfig::default()).inject(s, seed)),
        ),
        (
            "false_data_injection",
            Box::new(|s, seed| {
                inject_vector(
                    s,
                    AttackVector::FalseDataInjection { bias: 1.25 },
                    0.15,
                    seed,
                )
            }),
        ),
        (
            "temporal_disruption",
            Box::new(|s, seed| inject_vector(s, AttackVector::TemporalDisruption, 0.15, seed)),
        ),
        (
            "ramp",
            Box::new(|s, seed| inject_vector(s, AttackVector::Ramp { peak: 3.0 }, 0.15, seed)),
        ),
        (
            "pulse",
            Box::new(|s, seed| {
                inject_vector(s, AttackVector::Pulse { magnitude: 3.0 }, 0.15, seed)
            }),
        ),
    ];

    println!(
        "{:<22} {:>6} {:>10} {:>8} {:>7} {:>7}",
        "vector", "zone", "precision", "recall", "F1", "FPR%"
    );
    for (name, inject) in &vectors {
        let mut overall = DetectionReport::from_flags(&[], &[]);
        for (i, c) in clients.iter().enumerate() {
            let outcome = inject(&c.demand, cfg.seed + i as u64);
            let detection = filters[i]
                .try_detect(&scalers[i].transform(&outcome.series))
                .expect("detect");
            let report = DetectionReport::from_flags(&outcome.labels, &detection.flags);
            println!(
                "{:<22} {:>6} {:>10.3} {:>8.3} {:>7.3} {:>7.2}",
                name,
                c.zone.label(),
                report.precision(),
                report.recall(),
                report.f1(),
                report.false_positive_rate() * 100.0
            );
            overall = overall.merged(report);
        }
        println!(
            "{:<22} {:>6} {:>10.3} {:>8.3} {:>7.3} {:>7.2}",
            name,
            "all",
            overall.precision(),
            overall.recall(),
            overall.f1(),
            overall.false_positive_rate() * 100.0
        );
    }
}
