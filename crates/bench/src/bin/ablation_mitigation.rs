//! Ablation: mitigation strategies beyond linear interpolation.
//!
//! The paper calls its linear interpolation "a basic mitigation approach"
//! and suggests more sophisticated reconstruction (§III-G). This bench
//! compares linear, seasonal-naive, and hold-last replacement by how much
//! of the attack damage each removes, per zone.

use evfad_bench::BenchOpts;
use evfad_core::anomaly::{merge_segments, AnomalyFilter, MitigationStrategy};
use evfad_core::attack::DdosInjector;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::timeseries::MinMaxScaler;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: mitigation strategies"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let injector = DdosInjector::new(cfg.attack.clone());

    println!(
        "{:<8} {:<16} {:>12} {:>12} {:>10}",
        "zone", "strategy", "damage L1", "residual L1", "recovery%"
    );
    for (i, c) in clients.iter().enumerate() {
        let outcome = injector.inject(&c.demand, cfg.seed + i as u64);
        let scaler = MinMaxScaler::fit(&outcome.series).expect("scaler");
        let mut filter_cfg = cfg.filter.clone();
        filter_cfg.seed = cfg.seed + i as u64;
        let mut filter = AnomalyFilter::new(filter_cfg);
        filter
            .fit(&scaler.transform(&c.demand))
            .expect("filter fit");
        let detection = filter
            .try_detect(&scaler.transform(&outcome.series))
            .expect("detect");
        let merged = merge_segments(&detection.flags, 2);
        let damage: f64 = outcome
            .series
            .iter()
            .zip(&c.demand)
            .map(|(a, b)| (a - b).abs())
            .sum();
        for strategy in [
            MitigationStrategy::Linear,
            MitigationStrategy::SeasonalNaive,
            MitigationStrategy::HoldLast,
        ] {
            let fixed = strategy.apply(&outcome.series, &merged).expect("apply");
            let residual: f64 = fixed
                .iter()
                .zip(&c.demand)
                .map(|(a, b)| (a - b).abs())
                .sum();
            println!(
                "{:<8} {:<16} {:>12.1} {:>12.1} {:>10.1}",
                c.zone.label(),
                strategy.name(),
                damage,
                residual,
                (damage - residual) / damage * 100.0
            );
        }
    }
}
