//! Drives the hierarchical scale engine at paper-style populations —
//! 10k, 100k, and 1M clients — and emits `BENCH_scale.json` (schema v2)
//! with rounds/sec per thread count and peak aggregation memory. The
//! 100k-client population also runs with `compression: quant8`, where
//! every edge fold ingests encoded payloads through the fused
//! decode-into-fold path; those rows must stay checksum-identical
//! across thread counts like the uncompressed ones.
//!
//! Gates, checked before anything is timed:
//!
//! * **bitwise** — a flat (`edges: 1`) FedAvg run with
//!   `verify_streaming` must match the batch aggregate bit for bit every
//!   round (the streaming fold replays the batch fold exactly);
//! * **tolerance** — a hierarchical run must match the batch aggregate
//!   within 1e-9 relative (reassociation across shards is the only
//!   permitted difference);
//! * **parallel** — the wave fan-out must reproduce the serial run
//!   byte for byte at every tested thread count: identical weight
//!   checksum, traffic totals, and per-round stats (peak state is the
//!   one legitimately thread-dependent number and is compared against
//!   its own bound instead). Runs with real training in the loop so the
//!   trained subset is covered too;
//! * **O(model · workers)** — peak live aggregation state must equal
//!   exactly `(1 + min(threads, edges))` models (root + one edge
//!   accumulator per concurrently active fold) and must not grow when
//!   the population does;
//! * **determinism** — identical seeds must reproduce the weight
//!   checksum.
//!
//! Usage: `cargo run --release --bin bench_scale [output-path] [--smoke]`
//!
//! `--smoke` shrinks the model and populations and skips the JSON dump —
//! the CI gate that streaming aggregation stays exact, parallel == serial
//! bitwise (at `threads: 2`, which oversubscribes correctly even on a
//! 1-CPU runner: the pool's caller drains the queue), and peak O(model).

use evfad_core::federated::scale::{
    ScaleConfig, ScaleEngine, ScaleOutcome, ScaleRoundStats, ScaleTrainer,
};
use evfad_core::federated::CompressionMode;
use evfad_core::nn::forecaster_model;
use evfad_core::tensor::Matrix;

/// Input window length for the real-training subset (the forecaster
/// consumes `LOOKBACK x 1` sequences).
const LOOKBACK: usize = 12;

/// Paper-shaped model template for update synthesis.
fn template(lstm_units: usize) -> Vec<Matrix> {
    forecaster_model(lstm_units, 42).weights()
}

// ---------------------------------------------------------------------------
// Gates.
// ---------------------------------------------------------------------------

fn run(cfg: ScaleConfig, model: &[Matrix], lstm_units: usize) -> ScaleOutcome {
    let trained = cfg.trained_fraction > 0.0;
    let mut engine = ScaleEngine::new(model.to_vec(), cfg).expect("valid scale config");
    if trained {
        engine = engine
            .with_trainer(ScaleTrainer::new(
                forecaster_model(lstm_units, 42),
                LOOKBACK,
            ))
            .expect("trainer matches the template");
    }
    engine.run().expect("scale run")
}

/// Round stats with the thread-dependent peak (and host-dependent
/// duration) stripped, for cross-thread-count equality checks.
fn comparable(rounds: &[ScaleRoundStats]) -> Vec<ScaleRoundStats> {
    rounds
        .iter()
        .map(|r| ScaleRoundStats {
            peak_state_bytes: 0,
            duration: std::time::Duration::ZERO,
            ..r.clone()
        })
        .collect()
}

fn gate_streaming(model: &[Matrix], lstm_units: usize, clients: usize) {
    // Bitwise: flat streaming FedAvg == batch FedAvg (asserted per round
    // inside the engine when verify_streaming is set).
    run(
        ScaleConfig {
            clients,
            rounds: 2,
            edges: 1,
            verify_streaming: true,
            ..ScaleConfig::default()
        },
        model,
        lstm_units,
    );
    // Tolerance: hierarchical composition stays within 1e-9 relative.
    run(
        ScaleConfig {
            clients,
            rounds: 2,
            edges: 8,
            verify_streaming: true,
            ..ScaleConfig::default()
        },
        model,
        lstm_units,
    );
    println!("gate: streaming == batch (flat bitwise, hierarchical ≤1e-9)");
}

fn gate_parallel_bitwise(model: &[Matrix], lstm_units: usize, clients: usize, threads: &[usize]) {
    // Real training in the loop so the fan-out covers the trained subset,
    // and verify_streaming so each fold's state-stability assert runs.
    let cfg = |threads: usize| ScaleConfig {
        clients,
        rounds: 2,
        edges: 8,
        threads,
        trained_fraction: 0.05,
        verify_streaming: true,
        seed: 11,
        ..ScaleConfig::default()
    };
    let serial = run(cfg(1), model, lstm_units);
    assert!(
        serial.rounds.iter().any(|r| r.trained > 0),
        "the gate must exercise the real-training path"
    );
    for &t in threads {
        let par = run(cfg(t), model, lstm_units);
        assert_eq!(
            par.weights_checksum(),
            serial.weights_checksum(),
            "threads={t} diverged from serial"
        );
        assert_eq!(par.traffic, serial.traffic, "threads={t} traffic diverged");
        assert_eq!(
            comparable(&par.rounds),
            comparable(&serial.rounds),
            "threads={t} round stats diverged"
        );
    }
    println!(
        "gate: parallel == serial bitwise at threads {:?} (checksum {})",
        threads,
        serial.weights_checksum()
    );
}

fn gate_o_model(model: &[Matrix], lstm_units: usize, small: usize, large: usize) {
    let cfg = |clients, threads| ScaleConfig {
        clients,
        rounds: 2,
        edges: 8,
        threads,
        ..ScaleConfig::default()
    };
    for &threads in &[1usize, 4] {
        let a = run(cfg(small, threads), model, lstm_units);
        let b = run(cfg(large, threads), model, lstm_units);
        assert_eq!(
            a.peak_aggregation_bytes, b.peak_aggregation_bytes,
            "peak aggregation state grew with the population at threads={threads}"
        );
        // Root + one edge accumulator per concurrently active fold.
        let workers = threads.min(8);
        assert_eq!(
            b.peak_aggregation_bytes,
            (1 + workers) * b.model_bytes,
            "live state must be root + {workers} active edge accumulators"
        );
        assert!(
            b.materialized_equivalent_bytes > a.materialized_equivalent_bytes,
            "materialised-equivalent memory must track the population"
        );
    }
    println!(
        "gate: O(model · workers) — peak 2 models serial / 5 models at threads=4, \
         invariant from {small} to {large} clients"
    );
}

fn gate_determinism(model: &[Matrix], lstm_units: usize, clients: usize) {
    let cfg = ScaleConfig {
        clients,
        rounds: 2,
        edges: 4,
        seed: 7,
        ..ScaleConfig::default()
    };
    let a = run(cfg.clone(), model, lstm_units);
    let b = run(cfg, model, lstm_units);
    assert_eq!(
        a.weights_checksum(),
        b.weights_checksum(),
        "same seed must reproduce the weight checksum"
    );
    println!("gate: deterministic (checksum {})", a.weights_checksum());
}

// ---------------------------------------------------------------------------
// Timed scenarios.
// ---------------------------------------------------------------------------

struct Scenario {
    clients: usize,
    edges: usize,
    rounds: usize,
    threads: usize,
    trained_fraction: f64,
    compression: CompressionMode,
}

struct ScenarioResult {
    clients: usize,
    edges: usize,
    rounds: usize,
    threads: usize,
    compression: CompressionMode,
    sampled_per_round: usize,
    trained_clients: usize,
    rounds_per_sec: f64,
    peak_aggregation_bytes: usize,
    materialized_equivalent_bytes: usize,
    memory_ratio: f64,
    uplink_mb_per_round: f64,
    checksum: String,
}

fn time_scenario(s: &Scenario, model: &[Matrix], lstm_units: usize) -> ScenarioResult {
    let out = run(
        ScaleConfig {
            clients: s.clients,
            rounds: s.rounds,
            edges: s.edges,
            threads: s.threads,
            trained_fraction: s.trained_fraction,
            compression: s.compression,
            ..ScaleConfig::default()
        },
        model,
        lstm_units,
    );
    let secs = out.total_duration.as_secs_f64();
    let uplink: usize = out.rounds.iter().map(|r| r.uplink_bytes).sum();
    ScenarioResult {
        clients: s.clients,
        edges: s.edges,
        rounds: s.rounds,
        threads: s.threads,
        compression: s.compression,
        sampled_per_round: out.rounds[0].sampled,
        trained_clients: out.rounds.iter().map(|r| r.trained).sum(),
        rounds_per_sec: s.rounds as f64 / secs,
        peak_aggregation_bytes: out.peak_aggregation_bytes,
        materialized_equivalent_bytes: out.materialized_equivalent_bytes,
        memory_ratio: out.materialized_equivalent_bytes as f64 / out.peak_aggregation_bytes as f64,
        uplink_mb_per_round: uplink as f64 / s.rounds as f64 / 1e6,
        checksum: out.weights_checksum(),
    }
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    let (lstm_units, scenarios) = if smoke {
        let mut s = vec![Scenario {
            clients: 2_000,
            edges: 8,
            rounds: 2,
            threads: 1,
            trained_fraction: 0.0,
            compression: CompressionMode::None,
        }];
        // Compressed uplink smoke rows: the windows() identity below pins
        // the Quant8 checksum across thread counts in CI.
        for threads in [1usize, 2] {
            s.push(Scenario {
                clients: 2_000,
                edges: 8,
                rounds: 2,
                threads,
                trained_fraction: 0.0,
                compression: CompressionMode::Quant8,
            });
        }
        (8, s)
    } else {
        let mut s = vec![
            Scenario {
                clients: 10_000,
                edges: 16,
                rounds: 5,
                threads: 1,
                trained_fraction: 0.0,
                compression: CompressionMode::None,
            },
            Scenario {
                clients: 100_000,
                edges: 32,
                rounds: 5,
                threads: 1,
                trained_fraction: 0.0,
                compression: CompressionMode::None,
            },
        ];
        // The compressed-uplink scenario at 100k clients, one row per
        // thread count: the fused decode-into-fold runs inside every edge
        // fold and the windows() identity below pins the checksum across
        // thread counts.
        for threads in [1usize, 2, 4] {
            s.push(Scenario {
                clients: 100_000,
                edges: 32,
                rounds: 3,
                threads,
                trained_fraction: 0.0,
                compression: CompressionMode::Quant8,
            });
        }
        // The 1M-client scenario, one row per thread count. A tiny real
        // trained fraction (~30 clients per 100k-client round) keeps the
        // fused train-step kernels in the measured loop.
        for threads in [1usize, 2, 4] {
            s.push(Scenario {
                clients: 1_000_000,
                edges: 64,
                rounds: 3,
                threads,
                trained_fraction: 0.0003,
                compression: CompressionMode::None,
            });
        }
        (50, s)
    };

    println!(
        "scale bench: {} (forecaster LSTM({lstm_units}))",
        if smoke { "smoke" } else { "full" }
    );
    let model = template(lstm_units);
    let model_bytes: usize = model.iter().map(|m| m.len() * 8).sum();

    let (gate_clients, small, large) = if smoke {
        (500, 1_000, 4_000)
    } else {
        (1_000, 2_000, 20_000)
    };
    let gate_threads: &[usize] = if smoke { &[2] } else { &[2, 4, 8] };
    gate_streaming(&model, lstm_units, gate_clients);
    gate_parallel_bitwise(&model, lstm_units, gate_clients, gate_threads);
    gate_o_model(&model, lstm_units, small, large);
    gate_determinism(&model, lstm_units, gate_clients);

    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .map(|s| time_scenario(s, &model, lstm_units))
        .collect();
    for r in &results {
        println!(
            "clients {:>8}  edges {:>3}  threads {:>2}  mode {:<7}  sampled/round {:>7}  trained {:>4}  \
             {:>7.2} rounds/s  peak {:>8} B  batch-equivalent {:>13} B  ({:>7.0}x)  \
             uplink {:>9.2} MB/round",
            r.clients,
            r.edges,
            r.threads,
            r.compression.to_string(),
            r.sampled_per_round,
            r.trained_clients,
            r.rounds_per_sec,
            r.peak_aggregation_bytes,
            r.materialized_equivalent_bytes,
            r.memory_ratio,
            r.uplink_mb_per_round,
        );
    }

    // Rows that differ only in thread count must agree byte for byte.
    for w in results.windows(2) {
        if w[0].clients == w[1].clients
            && w[0].edges == w[1].edges
            && w[0].rounds == w[1].rounds
            && w[0].compression == w[1].compression
        {
            assert_eq!(
                w[0].checksum, w[1].checksum,
                "threads {} and {} disagree on the {}-client {} checksum",
                w[0].threads, w[1].threads, w[0].clients, w[0].compression
            );
        }
    }

    if smoke {
        println!("smoke ok: streaming exact, parallel bitwise, peak O(model · workers)");
        return;
    }

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"clients\": {},\n",
                    "      \"edges\": {},\n",
                    "      \"rounds\": {},\n",
                    "      \"threads\": {},\n",
                    "      \"compression\": \"{}\",\n",
                    "      \"sampled_per_round\": {},\n",
                    "      \"trained_clients\": {},\n",
                    "      \"rounds_per_sec\": {:.3},\n",
                    "      \"peak_aggregation_bytes\": {},\n",
                    "      \"materialized_equivalent_bytes\": {},\n",
                    "      \"memory_ratio\": {:.1},\n",
                    "      \"uplink_mb_per_round\": {:.3},\n",
                    "      \"checksum\": \"{}\"\n",
                    "    }}"
                ),
                r.clients,
                r.edges,
                r.rounds,
                r.threads,
                r.compression,
                r.sampled_per_round,
                r.trained_clients,
                r.rounds_per_sec,
                r.peak_aggregation_bytes,
                r.materialized_equivalent_bytes,
                r.memory_ratio,
                r.uplink_mb_per_round,
                r.checksum,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale\",\n",
            "  \"schema\": 2,\n",
            "  \"host_cpus\": {},\n",
            "  \"model\": \"forecaster LSTM({})\",\n",
            "  \"model_bytes\": {},\n",
            "  \"participation\": 0.1,\n",
            "  \"aggregator\": \"fedavg\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cpus,
        lstm_units,
        model_bytes,
        entries.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench results");
    println!("wrote {out_path}");
}
