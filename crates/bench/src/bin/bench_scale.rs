//! Drives the hierarchical scale engine at paper-style populations —
//! 10k and 100k clients — and emits `BENCH_scale.json` with rounds/sec
//! and peak aggregation memory.
//!
//! Gates, checked before anything is timed:
//!
//! * **bitwise** — a flat (`edges: 1`) FedAvg run with
//!   `verify_streaming` must match the batch aggregate bit for bit every
//!   round (the streaming fold replays the batch fold exactly);
//! * **tolerance** — a hierarchical run must match the batch aggregate
//!   within 1e-9 relative (reassociation across shards is the only
//!   permitted difference);
//! * **O(model)** — peak live aggregation state must equal exactly two
//!   models (root + one edge accumulator) and must not grow when the
//!   population does;
//! * **determinism** — identical seeds must reproduce the weight
//!   checksum.
//!
//! Usage: `cargo run --release --bin bench_scale [output-path] [--smoke]`
//!
//! `--smoke` shrinks the model and populations and skips the JSON dump —
//! the CI gate that streaming aggregation stays exact and O(model).

use evfad_core::federated::scale::{ScaleConfig, ScaleEngine, ScaleOutcome};
use evfad_core::nn::forecaster_model;
use evfad_core::tensor::Matrix;

/// Paper-shaped model template for update synthesis.
fn template(lstm_units: usize) -> Vec<Matrix> {
    forecaster_model(lstm_units, 42).weights()
}

// ---------------------------------------------------------------------------
// Gates.
// ---------------------------------------------------------------------------

fn run(cfg: ScaleConfig, model: &[Matrix]) -> ScaleOutcome {
    let mut engine = ScaleEngine::new(model.to_vec(), cfg).expect("valid scale config");
    engine.run().expect("scale run")
}

fn gate_streaming(model: &[Matrix], clients: usize) {
    // Bitwise: flat streaming FedAvg == batch FedAvg (asserted per round
    // inside the engine when verify_streaming is set).
    run(
        ScaleConfig {
            clients,
            rounds: 2,
            edges: 1,
            verify_streaming: true,
            ..ScaleConfig::default()
        },
        model,
    );
    // Tolerance: hierarchical composition stays within 1e-9 relative.
    run(
        ScaleConfig {
            clients,
            rounds: 2,
            edges: 8,
            verify_streaming: true,
            ..ScaleConfig::default()
        },
        model,
    );
    println!("gate: streaming == batch (flat bitwise, hierarchical ≤1e-9)");
}

fn gate_o_model(model: &[Matrix], small: usize, large: usize) {
    let cfg = |clients| ScaleConfig {
        clients,
        rounds: 2,
        edges: 8,
        ..ScaleConfig::default()
    };
    let a = run(cfg(small), model);
    let b = run(cfg(large), model);
    assert_eq!(
        a.peak_aggregation_bytes, b.peak_aggregation_bytes,
        "peak aggregation state grew with the population"
    );
    assert_eq!(
        b.peak_aggregation_bytes,
        2 * b.model_bytes,
        "FedAvg live state must be exactly root + one edge accumulator"
    );
    assert!(
        b.materialized_equivalent_bytes > a.materialized_equivalent_bytes,
        "materialised-equivalent memory must track the population"
    );
    println!(
        "gate: O(model) — peak {} B at {small} and {large} clients (batch would hold {} B)",
        b.peak_aggregation_bytes, b.materialized_equivalent_bytes
    );
}

fn gate_determinism(model: &[Matrix], clients: usize) {
    let cfg = ScaleConfig {
        clients,
        rounds: 2,
        edges: 4,
        seed: 7,
        ..ScaleConfig::default()
    };
    let a = run(cfg.clone(), model);
    let b = run(cfg, model);
    assert_eq!(
        a.weights_checksum(),
        b.weights_checksum(),
        "same seed must reproduce the weight checksum"
    );
    println!("gate: deterministic (checksum {})", a.weights_checksum());
}

// ---------------------------------------------------------------------------
// Timed scenarios.
// ---------------------------------------------------------------------------

struct Scenario {
    clients: usize,
    edges: usize,
    rounds: usize,
}

struct ScenarioResult {
    clients: usize,
    edges: usize,
    rounds: usize,
    sampled_per_round: usize,
    rounds_per_sec: f64,
    peak_aggregation_bytes: usize,
    materialized_equivalent_bytes: usize,
    memory_ratio: f64,
    uplink_mb_per_round: f64,
    checksum: String,
}

fn time_scenario(s: &Scenario, model: &[Matrix]) -> ScenarioResult {
    let out = run(
        ScaleConfig {
            clients: s.clients,
            rounds: s.rounds,
            edges: s.edges,
            ..ScaleConfig::default()
        },
        model,
    );
    let secs = out.total_duration.as_secs_f64();
    let uplink: usize = out.rounds.iter().map(|r| r.uplink_bytes).sum();
    ScenarioResult {
        clients: s.clients,
        edges: s.edges,
        rounds: s.rounds,
        sampled_per_round: out.rounds[0].sampled,
        rounds_per_sec: s.rounds as f64 / secs,
        peak_aggregation_bytes: out.peak_aggregation_bytes,
        materialized_equivalent_bytes: out.materialized_equivalent_bytes,
        memory_ratio: out.materialized_equivalent_bytes as f64 / out.peak_aggregation_bytes as f64,
        uplink_mb_per_round: uplink as f64 / s.rounds as f64 / 1e6,
        checksum: out.weights_checksum(),
    }
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    let (lstm_units, scenarios) = if smoke {
        (
            8,
            vec![Scenario {
                clients: 2_000,
                edges: 8,
                rounds: 2,
            }],
        )
    } else {
        (
            50,
            vec![
                Scenario {
                    clients: 10_000,
                    edges: 16,
                    rounds: 5,
                },
                Scenario {
                    clients: 100_000,
                    edges: 32,
                    rounds: 5,
                },
            ],
        )
    };

    println!(
        "scale bench: {} (forecaster LSTM({lstm_units}))",
        if smoke { "smoke" } else { "full" }
    );
    let model = template(lstm_units);
    let model_bytes: usize = model.iter().map(|m| m.len() * 8).sum();

    let (gate_clients, small, large) = if smoke {
        (500, 1_000, 4_000)
    } else {
        (1_000, 2_000, 20_000)
    };
    gate_streaming(&model, gate_clients);
    gate_o_model(&model, small, large);
    gate_determinism(&model, gate_clients);

    let results: Vec<ScenarioResult> = scenarios.iter().map(|s| time_scenario(s, &model)).collect();
    for r in &results {
        println!(
            "clients {:>7}  edges {:>3}  sampled/round {:>6}  {:>7.2} rounds/s  peak {:>8} B  \
             batch-equivalent {:>12} B  ({:>6.0}x)  uplink {:>8.2} MB/round",
            r.clients,
            r.edges,
            r.sampled_per_round,
            r.rounds_per_sec,
            r.peak_aggregation_bytes,
            r.materialized_equivalent_bytes,
            r.memory_ratio,
            r.uplink_mb_per_round,
        );
    }

    if smoke {
        println!("smoke ok: streaming exact, peak O(model), runs deterministic");
        return;
    }

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"clients\": {},\n",
                    "      \"edges\": {},\n",
                    "      \"rounds\": {},\n",
                    "      \"sampled_per_round\": {},\n",
                    "      \"rounds_per_sec\": {:.3},\n",
                    "      \"peak_aggregation_bytes\": {},\n",
                    "      \"materialized_equivalent_bytes\": {},\n",
                    "      \"memory_ratio\": {:.1},\n",
                    "      \"uplink_mb_per_round\": {:.3},\n",
                    "      \"checksum\": \"{}\"\n",
                    "    }}"
                ),
                r.clients,
                r.edges,
                r.rounds,
                r.sampled_per_round,
                r.rounds_per_sec,
                r.peak_aggregation_bytes,
                r.materialized_equivalent_bytes,
                r.memory_ratio,
                r.uplink_mb_per_round,
                r.checksum,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale\",\n",
            "  \"host_cpus\": {},\n",
            "  \"model\": \"forecaster LSTM({})\",\n",
            "  \"model_bytes\": {},\n",
            "  \"participation\": 0.1,\n",
            "  \"aggregator\": \"fedavg\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cpus,
        lstm_units,
        model_bytes,
        entries.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench results");
    println!("wrote {out_path}");
}
