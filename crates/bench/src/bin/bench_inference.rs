//! Serving-throughput bench: windows/sec of the scalar-exact scoring path
//! against the frozen inference snapshot's blocked-f64 and int8 lanes, and
//! emits `BENCH_inference.json`.
//!
//! The scalar-exact baseline is the production per-window path — one
//! `AnomalyFilter::score_into` call per streamed window, exactly what
//! `OnlineDetector::push` does. The fast lanes score the same windows
//! through `InferenceModel::forward_batch_into`: weights packed once,
//! many windows per GEMM, optionally int8 weights with f32 accumulation.
//! Multi-thread rows split the batch into contiguous chunks served by
//! per-worker snapshot clones on the deterministic
//! `evfad_tensor::parallel` pool — chunking cannot change any window's
//! bits, so thread count is a pure throughput knob.
//!
//! Accuracy is gated, not hoped for: every run measures the max absolute
//! score delta and the decision-flip rate of each fast lane against the
//! exact scores (threshold = the filter's fitted boundary on the paper
//! generator's data) and asserts the documented bounds — on a default
//! (non-`fastmath`) build the blocked-f64 lane must be **bitwise
//! identical** (zero delta, zero flips); under `fastmath` it must stay
//! within 1e-6 with at most 1 % flips; the int8 lane must stay within
//! 0.05 with at most 2 % flips on either build.
//!
//! Usage: `cargo run --release --bin bench_inference [output-path] [--smoke]`
//!
//! `--smoke` runs a tiny model with few repetitions and skips the JSON
//! dump — the CI gate for the exactness/accuracy contract above. The
//! committed `BENCH_inference.json` is produced with `--features
//! fastmath` (the serving build), whose full mode additionally gates the
//! headline speedups: blocked-f64 ≥ 1.5×, int8 ≥ 2× windows/sec over
//! scalar-exact, single-threaded, on the paper's LSTM(50) autoencoder.

use evfad_core::anomaly::{AnomalyFilter, FilterConfig};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::nn::infer::{InferenceModel, Precision};
use evfad_core::tensor::parallel;
use evfad_core::timeseries::MinMaxScaler;
use std::time::Instant;

/// One worker's contiguous slice of the window batch.
struct Worker {
    model: InferenceModel,
    input: Vec<f64>,
    recon: Vec<f64>,
    rows: usize,
    out_shape: (usize, usize),
}

/// Splits `windows` (flat, `n_wins × seq_len`) into balanced contiguous
/// per-worker chunks — the same split `parallel::distribute` uses.
fn make_workers(
    prototype: &InferenceModel,
    windows: &[f64],
    n_wins: usize,
    seq_len: usize,
    threads: usize,
) -> Vec<Worker> {
    let chunks = threads.min(n_wins).max(1);
    let base = n_wins / chunks;
    let extra = n_wins % chunks;
    let mut start = 0usize;
    (0..chunks)
        .map(|c| {
            let rows = base + usize::from(c < extra);
            let input = windows[start * seq_len..(start + rows) * seq_len].to_vec();
            start += rows;
            Worker {
                model: prototype.clone(),
                input,
                recon: Vec::new(),
                rows,
                out_shape: (0, 0),
            }
        })
        .collect()
}

/// One batched pass over all workers; returns per-window scores
/// (squared reconstruction error at the window's last point).
fn score_batched(workers: &mut [Worker], values_last: &[f64], scores: &mut Vec<f64>) {
    let chunks = workers.len();
    parallel::distribute(workers, chunks, |_, w| {
        if w.rows > 0 {
            w.out_shape = w.model.forward_batch_into(&w.input, w.rows, &mut w.recon);
        }
    });
    scores.clear();
    let mut row = 0usize;
    for w in workers.iter() {
        let (os, of) = w.out_shape;
        for local in 0..w.rows {
            let err = w.recon[local * os * of + (os - 1) * of] - values_last[row];
            scores.push(err * err);
            row += 1;
        }
    }
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct LaneRow {
    mode: &'static str,
    threads: usize,
    windows_per_sec: f64,
    max_score_delta: f64,
    flip_rate: f64,
}

struct Accuracy {
    max_delta: f64,
    flip_rate: f64,
}

fn accuracy(exact: &[f64], fast: &[f64], threshold: f64) -> Accuracy {
    let mut max_delta = 0.0f64;
    let mut flips = 0usize;
    for (e, f) in exact.iter().zip(fast) {
        max_delta = max_delta.max((e - f).abs());
        if (e > &threshold) != (f > &threshold) {
            flips += 1;
        }
    }
    Accuracy {
        max_delta,
        flip_rate: flips as f64 / exact.len() as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_inference.json".to_string());
    let fastmath = cfg!(feature = "fastmath");

    // Paper generator data, scaled 0..1 as the paper's pipeline does.
    let (seq_len, units, train_len, eval_len, reps, thread_counts): (
        usize,
        (usize, usize),
        usize,
        usize,
        usize,
        &[usize],
    ) = if smoke {
        (8, (6, 3), 160, 80, 2, &[1, 2])
    } else {
        (24, (50, 25), 600, 560, 9, &[1, 2, 4])
    };
    let data = ShenzhenGenerator::new(DatasetConfig::small(train_len + eval_len, 2022))
        .generate_zone(Zone::Z102);
    let scaler = MinMaxScaler::fit(&data.demand[..train_len]).expect("non-degenerate demand");
    let scaled = scaler.transform(&data.demand);
    let (train, eval) = scaled.split_at(train_len);

    // Quick fit: one epoch at a wide stride — the bench needs real fitted
    // weights and a real threshold, not a converged model.
    let config = FilterConfig {
        seq_len,
        encoder_units: units,
        epochs: 1,
        train_stride: 4,
        ..FilterConfig::paper(7)
    };
    println!(
        "inference bench: {} (fastmath={fastmath}, seq_len={seq_len}, units={units:?}, reps={reps})",
        if smoke { "smoke" } else { "full" }
    );
    let fit_start = Instant::now();
    let mut filter = AnomalyFilter::new(config);
    filter.fit(train).expect("fit");
    let threshold = filter.threshold().expect("fitted");
    println!(
        "fitted in {:.1} s, threshold {threshold:.6}",
        fit_start.elapsed().as_secs_f64()
    );

    // Every stride-1 window of the eval slice, flat row-major, plus each
    // window's last value (the scored reading).
    let n_wins = eval.len() - seq_len + 1;
    let mut windows = Vec::with_capacity(n_wins * seq_len);
    let mut last = Vec::with_capacity(n_wins);
    for w in 0..n_wins {
        windows.extend_from_slice(&eval[w..w + seq_len]);
        last.push(eval[w + seq_len - 1]);
    }

    // Scalar-exact baseline: one score_into call per window, timed warm.
    let mut exact = vec![0.0f64; n_wins];
    let mut scratch = Vec::new();
    for (w, e) in exact.iter_mut().enumerate() {
        filter
            .score_into(&windows[w * seq_len..(w + 1) * seq_len], &mut scratch)
            .expect("score");
        *e = scratch[seq_len - 1];
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for w in 0..n_wins {
            filter
                .score_into(&windows[w * seq_len..(w + 1) * seq_len], &mut scratch)
                .expect("score");
        }
        samples.push(start.elapsed().as_secs_f64());
    }
    let exact_wps = n_wins as f64 / median(samples);
    let mut rows = vec![LaneRow {
        mode: "scalar_exact",
        threads: 1,
        windows_per_sec: exact_wps,
        max_score_delta: 0.0,
        flip_rate: 0.0,
    }];

    // Fast lanes: blocked-f64 and int8, each at every thread count.
    let model = filter.model().expect("fitted");
    for (mode, precision) in [("blocked_f64", Precision::F64), ("int8", Precision::Int8)] {
        let prototype = InferenceModel::freeze(model, precision).expect("freeze");
        for &threads in thread_counts {
            parallel::set_threads(threads);
            let mut workers = make_workers(&prototype, &windows, n_wins, seq_len, threads);
            let mut scores = Vec::with_capacity(n_wins);
            score_batched(&mut workers, &last, &mut scores); // warm every arena
            let mut samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let start = Instant::now();
                score_batched(&mut workers, &last, &mut scores);
                samples.push(start.elapsed().as_secs_f64());
            }
            let acc = accuracy(&exact, &scores, threshold);
            rows.push(LaneRow {
                mode,
                threads,
                windows_per_sec: n_wins as f64 / median(samples),
                max_score_delta: acc.max_delta,
                flip_rate: acc.flip_rate,
            });
        }
    }
    parallel::set_threads(1);

    for r in &rows {
        println!(
            "{:<12} threads={}  {:>10.0} windows/s  speedup {:>5.2}x  max|Δscore| {:.3e}  flips {:.3}%",
            r.mode,
            r.threads,
            r.windows_per_sec,
            r.windows_per_sec / exact_wps,
            r.max_score_delta,
            r.flip_rate * 100.0,
        );
    }

    // Accuracy gates (every build, every mode).
    for r in rows.iter().filter(|r| r.mode == "blocked_f64") {
        if fastmath {
            assert!(
                r.max_score_delta < 1e-6,
                "blocked-f64 drifted past 1e-6 under fastmath: {:.3e}",
                r.max_score_delta
            );
            assert!(
                r.flip_rate <= 0.01,
                "blocked-f64 flipped >1% of decisions: {:.4}",
                r.flip_rate
            );
        } else {
            assert_eq!(
                r.max_score_delta, 0.0,
                "default build must be bitwise-identical to the exact path"
            );
            assert_eq!(r.flip_rate, 0.0, "default build flipped a decision");
        }
    }
    for r in rows.iter().filter(|r| r.mode == "int8") {
        assert!(
            r.max_score_delta < 0.05,
            "int8 score delta out of bound: {:.3e}",
            r.max_score_delta
        );
        assert!(
            r.flip_rate <= 0.02,
            "int8 flipped >2% of decisions: {:.4}",
            r.flip_rate
        );
    }

    if smoke {
        println!(
            "smoke ok: serving lanes within bounds ({})",
            if fastmath {
                "fastmath accuracy gates"
            } else {
                "bitwise f64 gate + int8 bound"
            }
        );
        return;
    }

    // Headline speedup gates on the single-thread rows (full runs only —
    // the committed JSON is produced by a fastmath build).
    let wps = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.threads == 1)
            .expect("row present")
            .windows_per_sec
    };
    assert!(
        wps("blocked_f64") >= 1.5 * exact_wps,
        "blocked-f64 speedup below 1.5x: {:.2}",
        wps("blocked_f64") / exact_wps
    );
    assert!(
        wps("int8") >= 2.0 * exact_wps,
        "int8 speedup below 2x: {:.2}",
        wps("int8") / exact_wps
    );

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"mode\": \"{}\",\n",
                    "      \"threads\": {},\n",
                    "      \"windows_per_sec\": {:.1},\n",
                    "      \"speedup_vs_exact\": {:.2},\n",
                    "      \"max_score_delta\": {:.6e},\n",
                    "      \"decision_flip_rate\": {:.6}\n",
                    "    }}"
                ),
                r.mode,
                r.threads,
                r.windows_per_sec,
                r.windows_per_sec / exact_wps,
                r.max_score_delta,
                r.flip_rate,
            )
        })
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"inference\",\n",
            "  \"fastmath\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"reps\": {},\n",
            "  \"seq_len\": {},\n",
            "  \"encoder_units\": [{}, {}],\n",
            "  \"windows\": {},\n",
            "  \"threshold\": {:.6},\n",
            "  \"lanes\": [\n{}\n  ]\n}}\n"
        ),
        fastmath,
        host_cpus,
        reps,
        seq_len,
        units.0,
        units.1,
        n_wins,
        threshold,
        entries.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench results");
    println!("wrote {out_path}");
}
