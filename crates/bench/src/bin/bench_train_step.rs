//! Times one training step (forward + backward + optimiser update) of the
//! paper's models through the fused, workspace-backed layers against a
//! faithful reimplementation of the original allocating per-step algorithm,
//! and emits `BENCH_train_step.json`.
//!
//! The baseline below reproduces the pre-fusion layer math operation by
//! operation (per-step `hstack` of `[x | h]`, gate slices, fresh matrices
//! everywhere), so the two paths evaluate identical floating-point
//! expression trees: before timing anything the harness trains both for
//! several steps and asserts the resulting weights are **bitwise equal**.
//! Matrix-allocation counts per warm step come from
//! `evfad_tensor::alloc_stats()`.
//!
//! Usage: `cargo run --release --bin bench_train_step [output-path] [--smoke]`
//!
//! `--smoke` runs tiny shapes with few repetitions and skips the JSON dump —
//! the CI gate that the fused and baseline trajectories agree.

use evfad_core::nn::{Activation, Adam, Dense, Loss, Lstm, RepeatVector, Seq, Sequential};
use evfad_core::tensor::{alloc_stats, Matrix};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Baseline: the original allocating per-step layer algorithms.
// ---------------------------------------------------------------------------

fn sigmoid(x: f64) -> f64 {
    // Routes to the crate's numerically stable sigmoid — the same function
    // the layers use, so gate values match bitwise.
    Activation::Sigmoid.apply(x)
}

struct BaseStepCache {
    z: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
    c_prev: Matrix,
}

struct BaseLstm {
    input_dim: usize,
    hidden_dim: usize,
    return_sequences: bool,
    w: Matrix,
    b: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    cache: Vec<BaseStepCache>,
}

impl BaseLstm {
    fn new(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        w: Matrix,
        b: Matrix,
    ) -> Self {
        let z_dim = input_dim + hidden_dim;
        Self {
            input_dim,
            hidden_dim,
            return_sequences,
            w,
            b,
            grad_w: Matrix::zeros(z_dim, 4 * hidden_dim),
            grad_b: Matrix::zeros(1, 4 * hidden_dim),
            cache: Vec::new(),
        }
    }

    fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        let batch = input.batch_size();
        let h_dim = self.hidden_dim;
        let mut h = Matrix::zeros(batch, h_dim);
        let mut c = Matrix::zeros(batch, h_dim);
        if training {
            self.cache.clear();
        }
        let mut outputs = Vec::with_capacity(input.len());
        for x_t in input.iter() {
            let z = x_t.hstack(&h);
            let pre = z.matmul(&self.w).add_row_broadcast(&self.b);
            let i = pre.slice_cols(0..h_dim).map(sigmoid);
            let f = pre.slice_cols(h_dim..2 * h_dim).map(sigmoid);
            let g = pre.slice_cols(2 * h_dim..3 * h_dim).map(f64::tanh);
            let o = pre.slice_cols(3 * h_dim..4 * h_dim).map(sigmoid);
            let c_prev = c.clone();
            c = f.hadamard(&c_prev).zip_map(&i.hadamard(&g), |a, b| a + b);
            let tanh_c = c.map(f64::tanh);
            h = o.hadamard(&tanh_c);
            if training {
                self.cache.push(BaseStepCache {
                    z,
                    i,
                    f,
                    g,
                    o,
                    tanh_c: tanh_c.clone(),
                    c_prev,
                });
            }
            if self.return_sequences {
                outputs.push(h.clone());
            }
        }
        if self.return_sequences {
            Seq::from_steps(outputs)
        } else {
            Seq::single(h)
        }
    }

    fn backward(&mut self, grad: &Seq) -> Seq {
        let steps = self.cache.len();
        let h_dim = self.hidden_dim;
        let batch = grad.step(0).rows();
        let mut dh_next = Matrix::zeros(batch, h_dim);
        let mut dc_next = Matrix::zeros(batch, h_dim);
        let mut input_grads = vec![Matrix::zeros(batch, self.input_dim); steps];

        for t in (0..steps).rev() {
            let cache = &self.cache[t];
            let mut dh = dh_next.clone();
            if self.return_sequences {
                dh += grad.step(t);
            } else if t == steps - 1 {
                dh += grad.step(0);
            }
            let d_o = dh.hadamard(&cache.tanh_c);
            let mut dc = dh
                .hadamard(&cache.o)
                .zip_map(&cache.tanh_c, |v, tc| v * (1.0 - tc * tc));
            dc += &dc_next;
            let d_i = dc.hadamard(&cache.g);
            let d_f = dc.hadamard(&cache.c_prev);
            let d_g = dc.hadamard(&cache.i);
            dc_next = dc.hadamard(&cache.f);
            let dp_i = d_i.zip_map(&cache.i, |d, y| d * y * (1.0 - y));
            let dp_f = d_f.zip_map(&cache.f, |d, y| d * y * (1.0 - y));
            let dp_g = d_g.zip_map(&cache.g, |d, y| d * (1.0 - y * y));
            let dp_o = d_o.zip_map(&cache.o, |d, y| d * y * (1.0 - y));
            let dpre = dp_i.hstack(&dp_f).hstack(&dp_g).hstack(&dp_o);
            self.grad_w += &cache.z.transpose_matmul(&dpre);
            self.grad_b += &dpre.sum_rows();
            let dz = dpre.matmul_transpose(&self.w);
            input_grads[t] = dz.slice_cols(0..self.input_dim);
            dh_next = dz.slice_cols(self.input_dim..self.input_dim + h_dim);
        }
        Seq::from_steps(input_grads)
    }

    fn zero_grads(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b = Matrix::zeros(1, self.b.cols());
    }
}

struct BaseDense {
    w: Matrix,
    b: Matrix,
    activation: Activation,
    grad_w: Matrix,
    grad_b: Matrix,
    cache_inputs: Vec<Matrix>,
    cache_outputs: Vec<Matrix>,
}

impl BaseDense {
    fn new(activation: Activation, w: Matrix, b: Matrix) -> Self {
        let (i, o) = w.shape();
        Self {
            w,
            b,
            activation,
            grad_w: Matrix::zeros(i, o),
            grad_b: Matrix::zeros(1, o),
            cache_inputs: Vec::new(),
            cache_outputs: Vec::new(),
        }
    }

    fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        if training {
            self.cache_inputs.clear();
            self.cache_outputs.clear();
        }
        let act = self.activation;
        let steps = input
            .iter()
            .map(|x| {
                let y = x
                    .matmul(&self.w)
                    .add_row_broadcast(&self.b)
                    .map(|v| act.apply(v));
                if training {
                    self.cache_inputs.push(x.clone());
                    self.cache_outputs.push(y.clone());
                }
                y
            })
            .collect();
        Seq::from_steps(steps)
    }

    fn backward(&mut self, grad: &Seq) -> Seq {
        let act = self.activation;
        let mut input_grads = Vec::with_capacity(grad.len());
        for (t, g) in grad.iter().enumerate() {
            let y = &self.cache_outputs[t];
            let dpre = g.zip_map(y, |gv, yv| gv * act.derivative_from_output(yv));
            self.grad_w += &self.cache_inputs[t].transpose_matmul(&dpre);
            self.grad_b += &dpre.sum_rows();
            input_grads.push(dpre.matmul_transpose(&self.w));
        }
        Seq::from_steps(input_grads)
    }

    fn zero_grads(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b = Matrix::zeros(1, self.b.cols());
    }
}

enum BaseLayer {
    Lstm(BaseLstm),
    Dense(BaseDense),
    Repeat(RepeatVector),
}

impl BaseLayer {
    fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        match self {
            BaseLayer::Lstm(l) => l.forward(input, training),
            BaseLayer::Dense(l) => l.forward(input, training),
            BaseLayer::Repeat(l) => l.forward(input, training),
        }
    }

    fn backward(&mut self, grad: &Seq) -> Seq {
        match self {
            BaseLayer::Lstm(l) => l.backward(grad),
            BaseLayer::Dense(l) => l.backward(grad),
            BaseLayer::Repeat(l) => l.backward(grad),
        }
    }

    fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        match self {
            BaseLayer::Lstm(l) => vec![(&mut l.w, &mut l.grad_w), (&mut l.b, &mut l.grad_b)],
            BaseLayer::Dense(l) => vec![(&mut l.w, &mut l.grad_w), (&mut l.b, &mut l.grad_b)],
            BaseLayer::Repeat(_) => Vec::new(),
        }
    }

    fn zero_grads(&mut self) {
        match self {
            BaseLayer::Lstm(l) => l.zero_grads(),
            BaseLayer::Dense(l) => l.zero_grads(),
            BaseLayer::Repeat(_) => {}
        }
    }
}

struct BaseModel {
    layers: Vec<BaseLayer>,
    opt: Adam,
}

impl BaseModel {
    /// One training step mirroring the original `Sequential` loop (which
    /// cloned the input and the loss gradient before the layer sweeps).
    fn train_step(&mut self, x: &Seq, y: &Seq, loss: Loss) -> f64 {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, true);
        }
        let (loss_value, grad) = loss.evaluate(&cur, y);
        let mut g = grad.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        let mut pg: Vec<(&mut Matrix, &mut Matrix)> = self
            .layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads_mut())
            .collect();
        self.opt.step(&mut pg);
        drop(pg);
        for l in &mut self.layers {
            l.zero_grads();
        }
        loss_value
    }

    fn weights(&mut self) -> Vec<Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| {
                l.params_and_grads_mut()
                    .into_iter()
                    .map(|(w, _)| w.clone())
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Model configurations.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Spec {
    Lstm {
        input: usize,
        hidden: usize,
        seq: bool,
    },
    Dense {
        input: usize,
        output: usize,
        act: Activation,
    },
    Repeat(usize),
}

struct Config {
    name: &'static str,
    batch: usize,
    seq_len: usize,
    spec: Vec<Spec>,
    autoencoding: bool,
}

fn forecaster_config(batch: usize, seq_len: usize, hidden: usize) -> Config {
    Config {
        name: "forecaster",
        batch,
        seq_len,
        spec: vec![
            Spec::Lstm {
                input: 1,
                hidden,
                seq: false,
            },
            Spec::Dense {
                input: hidden,
                output: 10,
                act: Activation::Relu,
            },
            Spec::Dense {
                input: 10,
                output: 1,
                act: Activation::Linear,
            },
        ],
        autoencoding: false,
    }
}

/// The paper's LSTM autoencoder minus its `Dropout` layers (dropout draws
/// from per-layer RNG state the baseline cannot share, and it allocates
/// nothing in the hot path either way).
fn autoencoder_config(batch: usize, seq_len: usize, h1: usize, h2: usize) -> Config {
    Config {
        name: "autoencoder",
        batch,
        seq_len,
        spec: vec![
            Spec::Lstm {
                input: 1,
                hidden: h1,
                seq: true,
            },
            Spec::Lstm {
                input: h1,
                hidden: h2,
                seq: false,
            },
            Spec::Repeat(seq_len),
            Spec::Lstm {
                input: h2,
                hidden: h2,
                seq: true,
            },
            Spec::Lstm {
                input: h2,
                hidden: h1,
                seq: true,
            },
            Spec::Dense {
                input: h1,
                output: 1,
                act: Activation::Linear,
            },
        ],
        autoencoding: true,
    }
}

fn build_fused(cfg: &Config, seed: u64) -> Sequential {
    let mut model = Sequential::new(seed);
    for spec in &cfg.spec {
        match *spec {
            Spec::Lstm { input, hidden, seq } => model.push(Lstm::new(input, hidden, seq)),
            Spec::Dense { input, output, act } => model.push(Dense::new(input, output, act)),
            Spec::Repeat(n) => model.push(RepeatVector::new(n)),
        }
    }
    model
}

/// Builds the baseline with the fused model's exact initial weights.
fn build_baseline(cfg: &Config, fused: &Sequential) -> BaseModel {
    let mut weights = fused.weights().into_iter();
    let layers = cfg
        .spec
        .iter()
        .map(|spec| match *spec {
            Spec::Lstm { input, hidden, seq } => {
                let w = weights.next().expect("lstm kernel");
                let b = weights.next().expect("lstm bias");
                BaseLayer::Lstm(BaseLstm::new(input, hidden, seq, w, b))
            }
            Spec::Dense { act, .. } => {
                let w = weights.next().expect("dense kernel");
                let b = weights.next().expect("dense bias");
                BaseLayer::Dense(BaseDense::new(act, w, b))
            }
            Spec::Repeat(n) => BaseLayer::Repeat(RepeatVector::new(n)),
        })
        .collect();
    BaseModel {
        layers,
        opt: Adam::new(0.001),
    }
}

fn make_batch(cfg: &Config) -> (Seq, Seq) {
    let inputs: Vec<Matrix> = (0..cfg.batch)
        .map(|s| Matrix::from_fn(cfg.seq_len, 1, |t, _| ((s * 13 + t) as f64 * 0.23).sin()))
        .collect();
    let targets: Vec<Matrix> = if cfg.autoencoding {
        inputs.clone()
    } else {
        (0..cfg.batch)
            .map(|s| Matrix::from_fn(1, 1, |_, _| ((s * 13 + cfg.seq_len) as f64 * 0.23).sin()))
            .collect()
    };
    (Seq::from_samples(&inputs), Seq::from_samples(&targets))
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

struct ConfigResult {
    name: &'static str,
    batch: usize,
    seq_len: usize,
    baseline_ms: f64,
    fused_ms: f64,
    baseline_allocs: u64,
    fused_allocs: u64,
    bitwise_identical: bool,
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn run_config(cfg: &Config, seed: u64, reps: usize) -> ConfigResult {
    let (x, y) = make_batch(cfg);

    // Bitwise gate: both paths must land on identical weights after a few
    // optimiser steps from identical initial weights.
    let mut fused = build_fused(cfg, seed);
    let mut baseline = build_baseline(cfg, &fused);
    for _ in 0..3 {
        let lf = fused.train_batch(&x, &y, Loss::Mse, None);
        let lb = baseline.train_step(&x, &y, Loss::Mse);
        assert_eq!(
            lf.to_bits(),
            lb.to_bits(),
            "{}: losses diverged between fused and baseline",
            cfg.name
        );
    }
    let wf = fused.weights();
    let wb = baseline.weights();
    let bitwise_identical = wf.len() == wb.len()
        && wf
            .iter()
            .zip(&wb)
            .all(|(a, b)| a.as_slice() == b.as_slice());
    assert!(
        bitwise_identical,
        "{}: post-step weights diverged between fused and baseline",
        cfg.name
    );

    // Allocation counts for one warm step.
    let before = alloc_stats();
    let _ = baseline.train_step(&x, &y, Loss::Mse);
    let baseline_allocs = alloc_stats().since(&before).matrices;
    let before = alloc_stats();
    let _ = fused.train_batch(&x, &y, Loss::Mse, None);
    let fused_allocs = alloc_stats().since(&before).matrices;

    // Wall clock, median over `reps` warm steps each. The two paths are
    // interleaved rep-by-rep so machine-wide slowdowns (noisy neighbours,
    // frequency shifts) hit both sample sets equally instead of skewing
    // whichever path happened to run during the slow window.
    let mut baseline_samples = Vec::with_capacity(reps);
    let mut fused_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let _ = baseline.train_step(&x, &y, Loss::Mse);
        baseline_samples.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let _ = fused.train_batch(&x, &y, Loss::Mse, None);
        fused_samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let baseline_ms = median(baseline_samples);
    let fused_ms = median(fused_samples);

    ConfigResult {
        name: cfg.name,
        batch: cfg.batch,
        seq_len: cfg.seq_len,
        baseline_ms,
        fused_ms,
        baseline_allocs,
        fused_allocs,
        bitwise_identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_train_step.json".to_string());

    let (configs, reps) = if smoke {
        (
            vec![forecaster_config(4, 6, 8), autoencoder_config(4, 6, 8, 4)],
            3,
        )
    } else {
        (
            vec![
                forecaster_config(32, 24, 50),
                autoencoder_config(32, 24, 50, 25),
            ],
            21,
        )
    };

    println!(
        "train-step bench: {} (reps={reps})",
        if smoke { "smoke" } else { "full" }
    );
    let results: Vec<ConfigResult> = configs.iter().map(|c| run_config(c, 42, reps)).collect();
    for r in &results {
        println!(
            "{:<12} B={} T={}  baseline {:.3} ms / {} allocs  fused {:.3} ms / {} allocs  speedup {:.2}x  alloc-ratio {:.1}x  bitwise={}",
            r.name,
            r.batch,
            r.seq_len,
            r.baseline_ms,
            r.baseline_allocs,
            r.fused_ms,
            r.fused_allocs,
            r.baseline_ms / r.fused_ms,
            r.baseline_allocs as f64 / r.fused_allocs.max(1) as f64,
            r.bitwise_identical,
        );
    }

    if smoke {
        println!("smoke ok: fused and baseline trajectories bitwise identical");
        return;
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"config\": \"{}\",\n",
                    "      \"batch\": {},\n",
                    "      \"seq_len\": {},\n",
                    "      \"baseline_ms\": {:.4},\n",
                    "      \"fused_ms\": {:.4},\n",
                    "      \"speedup\": {:.2},\n",
                    "      \"baseline_allocs_per_step\": {},\n",
                    "      \"fused_allocs_per_step\": {},\n",
                    "      \"alloc_reduction\": {:.1},\n",
                    "      \"bitwise_identical\": {}\n",
                    "    }}"
                ),
                r.name,
                r.batch,
                r.seq_len,
                r.baseline_ms,
                r.fused_ms,
                r.baseline_ms / r.fused_ms,
                r.baseline_allocs,
                r.fused_allocs,
                r.baseline_allocs as f64 / r.fused_allocs.max(1) as f64,
                r.bitwise_identical,
            )
        })
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"train_step\",\n  \"host_cpus\": {},\n  \"reps\": {},\n  \"configs\": [\n{}\n  ]\n}}\n",
        host_cpus,
        reps,
        entries.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench results");
    println!("wrote {out_path}");
}
