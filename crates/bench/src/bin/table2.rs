//! Regenerates **Table II**: client-specific anomaly-detection results
//! (precision / recall / F1 per zone, plus overall precision and FPR).

use evfad_bench::BenchOpts;
use evfad_core::forecast::run_study;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Table II"));
    match run_study(&opts.study_config()) {
        Ok(report) => print!("{}", report.table2()),
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    }
}
