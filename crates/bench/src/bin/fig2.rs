//! Regenerates **Fig. 2**: performance of the anomaly-resilient federated
//! LSTM for Client 1 — the per-scenario R² bars and the prediction-vs-actual
//! test series (printed as columns; cap with `--rows`).

use evfad_bench::BenchOpts;
use evfad_core::forecast::run_study;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Fig 2"));
    match run_study(&opts.study_config()) {
        Ok(report) => print!("{}", report.fig2_text(opts.rows)),
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    }
}
