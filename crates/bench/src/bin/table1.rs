//! Regenerates **Table I**: complete performance comparison for Client 1
//! across the four scenarios (Clean/Attacked/Filtered federated, Filtered
//! centralized), plus the derived headline numbers.

use evfad_bench::BenchOpts;
use evfad_core::forecast::run_study;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Table I"));
    match run_study(&opts.study_config()) {
        Ok(report) => {
            print!("{}", report.table1());
            println!();
            println!("{}", report.headline_text());
        }
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    }
}
