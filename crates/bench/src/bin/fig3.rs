//! Regenerates **Fig. 3**: R² of federated vs centralized LSTM on filtered
//! data, one bar pair per client.

use evfad_bench::BenchOpts;
use evfad_core::forecast::run_study;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Fig 3"));
    match run_study(&opts.study_config()) {
        Ok(report) => print!("{}", report.fig3_text()),
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    }
}
