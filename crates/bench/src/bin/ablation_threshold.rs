//! Ablation: threshold rules for the anomaly detector.
//!
//! The paper fixes the boundary at the 98th percentile of training
//! reconstruction error; its related work ([4]) uses mean+k·std (MSD) and
//! MAD rules. This bench sweeps all three on identical attacked series.

use evfad_bench::BenchOpts;
use evfad_core::anomaly::{AnomalyFilter, DetectionReport, ThresholdRule};
use evfad_core::attack::DdosInjector;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::timeseries::MinMaxScaler;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: threshold rules"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let injector = DdosInjector::new(cfg.attack.clone());

    let rules = [
        ThresholdRule::Percentile(95.0),
        ThresholdRule::Percentile(98.0),
        ThresholdRule::Percentile(99.5),
        ThresholdRule::MeanStd { k: 3.0 },
        ThresholdRule::Mad { k: 6.0 },
    ];
    println!(
        "{:<22} {:>10} {:>8} {:>7} {:>7}",
        "rule", "precision", "recall", "F1", "FPR%"
    );
    for rule in rules {
        let mut overall = DetectionReport::from_flags(&[], &[]);
        for (i, c) in clients.iter().enumerate() {
            let outcome = injector.inject(&c.demand, cfg.seed + i as u64);
            let scaler = MinMaxScaler::fit(&outcome.series).expect("scaler");
            let mut filter_cfg = cfg.filter.clone();
            filter_cfg.threshold = rule;
            filter_cfg.seed = cfg.seed + i as u64;
            let mut filter = AnomalyFilter::new(filter_cfg);
            filter
                .fit(&scaler.transform(&c.demand))
                .expect("filter fit");
            let detection = filter
                .try_detect(&scaler.transform(&outcome.series))
                .expect("detect");
            overall = overall.merged(DetectionReport::from_flags(
                &outcome.labels,
                &detection.flags,
            ));
        }
        let label = match rule {
            ThresholdRule::Percentile(p) => format!("percentile({p})"),
            ThresholdRule::MeanStd { k } => format!("mean+{k}std"),
            ThresholdRule::Mad { k } => format!("median+{k}mad"),
        };
        println!(
            "{:<22} {:>10.3} {:>8.3} {:>7.3} {:>7.2}",
            label,
            overall.precision(),
            overall.recall(),
            overall.f1(),
            overall.false_positive_rate() * 100.0
        );
    }
}
