//! Ablation: personalised (local) vs global federated read-out.
//!
//! The paper's per-client numbers beat a pooled centralized model, which
//! requires evaluating each client with its locally-trained model after
//! the final round (see DESIGN.md §3). This bench quantifies the gap
//! between that personalised read-out and evaluating everyone with the
//! final global aggregate.

use evfad_bench::BenchOpts;
use evfad_core::forecast::experiment::ReadOut;
use evfad_core::forecast::{run_study, Architecture, Scenario};

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: federated read-out"));
    for read_out in [ReadOut::Local, ReadOut::Global] {
        let mut cfg = opts.study_config();
        cfg.read_out = read_out;
        match run_study(&cfg) {
            Ok(report) => {
                println!("\nread_out = {read_out:?}");
                println!(
                    "{:<8} {:>10} {:>10} {:>10}",
                    "zone", "clean R2", "attacked", "filtered"
                );
                for zone in ["102", "105", "108"] {
                    let r2 = |s| {
                        report
                            .result(s, Architecture::Federated)
                            .and_then(|r| r.client(zone))
                            .map(|c| c.r2)
                            .unwrap_or(f64::NAN)
                    };
                    println!(
                        "{:<8} {:>10.4} {:>10.4} {:>10.4}",
                        zone,
                        r2(Scenario::Clean),
                        r2(Scenario::Attacked),
                        r2(Scenario::Filtered)
                    );
                }
            }
            Err(e) => {
                eprintln!("study failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
