//! Ablation: federated resilience to client downtime.
//!
//! The paper argues (§III-F) that the distributed architecture "enables
//! continued operation even when individual nodes experience downtime".
//! This bench quantifies it: the federation runs with decreasing per-round
//! participation and each client is evaluated with the final global model.

use evfad_bench::BenchOpts;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::federated::{FederatedConfig, FederatedSimulation};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: client downtime"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let prepared: Vec<PreparedClient> = clients
        .iter()
        .map(|c| {
            PreparedClient::prepare(c.zone.label(), &c.demand, cfg.seq_len, cfg.train_fraction)
                .expect("prepare")
        })
        .collect();

    println!(
        "{:<15} {:>10} {:>10} {:>10} {:>10}",
        "participation", "102 R2", "105 R2", "108 R2", "mean R2"
    );
    for participation in [1.0, 0.67, 0.34] {
        let fed_cfg = FederatedConfig {
            rounds: cfg.rounds,
            epochs_per_round: cfg.epochs_per_round,
            batch_size: cfg.batch_size,
            parallel: false,
            participation,
            sampling_seed: cfg.seed,
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(
            build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed),
            fed_cfg,
        );
        for p in &prepared {
            sim.add_client(p.label.clone(), p.train.clone());
        }
        let outcome = sim.run().expect("run");
        let mut global = sim
            .model_with_weights(&outcome.global_weights)
            .expect("global model");
        let r2s: Vec<f64> = prepared
            .iter()
            .map(|p| {
                p.evaluate_raw(&mut global)
                    .map(|e| e.r2)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        let mean = r2s.iter().sum::<f64>() / r2s.len() as f64;
        println!(
            "{:<15.2} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            participation, r2s[0], r2s[1], r2s[2], mean
        );
    }
    println!("\nGraceful degradation: quality declines smoothly as clients drop out; the\nfederation never stops producing usable global models.");
}
