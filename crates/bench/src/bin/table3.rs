//! Regenerates **Table III**: client-specific performance comparison of the
//! federated vs centralized architectures on identically filtered data.

use evfad_bench::BenchOpts;
use evfad_core::forecast::run_study;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Table III"));
    match run_study(&opts.study_config()) {
        Ok(report) => print!("{}", report.table3()),
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    }
}
