//! Runs the complete four-scenario study once and prints every table and
//! figure (Tables I–III, Figs. 2–3) plus the headline numbers — the
//! one-shot artefact behind `EXPERIMENTS.md`. Optionally dumps the raw
//! report as JSON with `--json <path>`.

use evfad_bench::BenchOpts;
use evfad_core::forecast::run_study;

fn main() {
    let opts = BenchOpts::from_env();
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    println!("{}", opts.banner("Full study"));
    let report = match run_study(&opts.study_config()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.table1());
    println!();
    print!("{}", report.table2());
    println!();
    print!("{}", report.table3());
    println!();
    print!("{}", report.fig2_text(opts.rows));
    println!();
    print!("{}", report.fig3_text());
    println!();
    println!("{}", report.headline_text());
    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("could not write {path}: {e}");
                } else {
                    println!("\nreport JSON written to {path}");
                }
            }
            Err(e) => eprintln!("could not serialise report: {e}"),
        }
    }
}
