//! Ablation: 8-bit update compression.
//!
//! Quantizes client updates to u8 before aggregation and measures both the
//! bandwidth saved and the accuracy cost versus exact FedAvg.

use evfad_bench::BenchOpts;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::federated::compression::QuantizedUpdate;
use evfad_core::federated::{Aggregator, LocalUpdate};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::nn::TrainConfig;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: update compression"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let prepared: Vec<PreparedClient> = clients
        .iter()
        .map(|c| {
            PreparedClient::prepare(c.zone.label(), &c.demand, cfg.seq_len, cfg.train_fraction)
                .expect("prepare")
        })
        .collect();

    // Train honest updates.
    let train_cfg = TrainConfig {
        epochs: cfg.epochs_per_round,
        batch_size: cfg.batch_size,
        ..TrainConfig::default()
    };
    let mut exact_updates = Vec::new();
    for p in &prepared {
        let mut model = build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed);
        model.fit(&p.train, &train_cfg).expect("fit");
        exact_updates.push(LocalUpdate {
            client_id: p.label.clone(),
            weights: model.weights(),
            sample_count: p.train.len(),
            train_loss: 0.0,
            duration: std::time::Duration::ZERO,
            simulated_extra_seconds: 0.0,
        });
    }
    let mut quant_updates = exact_updates.clone();
    let mut raw_bytes = 0usize;
    let mut quant_bytes = 0usize;
    for u in &mut quant_updates {
        let q = QuantizedUpdate::quantize(&u.weights);
        raw_bytes += u.weights.iter().map(|m| m.len() * 8).sum::<usize>();
        quant_bytes += q.byte_size();
        u.weights = q.dequantize();
    }

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "variant", "102 R2", "105 R2", "108 R2"
    );
    for (name, updates) in [("exact", &exact_updates), ("quantized", &quant_updates)] {
        let global = Aggregator::FedAvg.aggregate(updates).expect("aggregate");
        let mut model = build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed);
        model.set_weights(&global).expect("weights");
        let r2s: Vec<f64> = prepared
            .iter()
            .map(|p| p.evaluate_raw(&mut model).map(|e| e.r2).unwrap_or(f64::NAN))
            .collect();
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>10.4}",
            name, r2s[0], r2s[1], r2s[2]
        );
    }
    println!(
        "\nbandwidth: raw {:.1} KiB vs quantized {:.1} KiB ({:.1}x smaller)",
        raw_bytes as f64 / 1024.0,
        quant_bytes as f64 / 1024.0,
        raw_bytes as f64 / quant_bytes as f64
    );
}
