//! Ablation: LSTM vs classical baselines.
//!
//! The paper motivates LSTMs over the statistical models surveyed in its
//! introduction (ARIMA-family, shallow learners). This bench compares the
//! federated LSTM against persistence, seasonal-naive, and an AR(24) ridge
//! model — each evaluated per zone on clean data.

use evfad_bench::BenchOpts;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::forecast::baselines::{
    ArForecaster, BaselineForecaster, NaiveForecaster, SeasonalNaiveForecaster,
};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::nn::TrainConfig;
use evfad_core::timeseries::metrics;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: forecaster baselines"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();

    println!(
        "{:<8} {:<16} {:>8} {:>8} {:>8}",
        "zone", "model", "MAE", "RMSE", "R2"
    );
    for c in &clients {
        let p = PreparedClient::prepare(c.zone.label(), &c.demand, cfg.seq_len, cfg.train_fraction)
            .expect("prepare");
        let boundary = p.boundary;
        // Baselines predict on the raw series; align with the test targets.
        let tail = &c.demand[boundary - cfg.seq_len..];
        let actual: Vec<f64> = tail[cfg.seq_len..].to_vec();

        let ar = ArForecaster::fit(&c.demand[..boundary], cfg.seq_len, 1e-4).expect("ar fit");
        let baselines: Vec<(&str, Vec<f64>)> = vec![
            ("naive", NaiveForecaster.predict_series(tail, cfg.seq_len)),
            (
                "seasonal_naive",
                SeasonalNaiveForecaster::default().predict_series(tail, cfg.seq_len),
            ),
            ("ar24_ridge", ar.predict_series(tail, cfg.seq_len)),
        ];
        for (name, preds) in &baselines {
            let rep = metrics::report(&actual, preds).expect("metrics");
            println!(
                "{:<8} {:<16} {:>8.4} {:>8.4} {:>8.4}",
                c.zone.label(),
                name,
                rep.mae,
                rep.rmse,
                rep.r2
            );
        }

        // Local LSTM trained like one federated client (no averaging),
        // same budget as the paper's local schedule.
        let mut model = build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed);
        let train_cfg = TrainConfig {
            epochs: cfg.rounds * cfg.epochs_per_round,
            batch_size: cfg.batch_size,
            ..TrainConfig::default()
        };
        model.fit(&p.train, &train_cfg).expect("fit");
        let eval = p.evaluate_raw(&mut model).expect("eval");
        println!(
            "{:<8} {:<16} {:>8.4} {:>8.4} {:>8.4}",
            c.zone.label(),
            "lstm_local",
            eval.mae,
            eval.rmse,
            eval.r2
        );
    }
}
