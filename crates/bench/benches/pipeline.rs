//! Criterion benchmark over the end-to-end pipeline at smoke scale:
//! dataset generation, attack injection, detection+mitigation, and one
//! federated round. These exist to catch pipeline-level regressions; the
//! paper-scale numbers come from the table binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use evfad_core::attack::{DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::federated::{FederatedConfig, FederatedSimulation};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("pipeline/generate_3zones_720h", |b| {
        b.iter(|| {
            std::hint::black_box(
                ShenzhenGenerator::new(DatasetConfig::small(720, 1)).generate_all(),
            )
        })
    });
}

fn bench_injection(c: &mut Criterion) {
    let client = ShenzhenGenerator::new(DatasetConfig::small(4344, 1)).generate_zone(Zone::Z102);
    let injector = DdosInjector::new(DdosConfig::default());
    c.bench_function("pipeline/inject_ddos_4344h", |b| {
        b.iter(|| std::hint::black_box(injector.inject(&client.demand, 7)))
    });
}

fn bench_preparation(c: &mut Criterion) {
    let client = ShenzhenGenerator::new(DatasetConfig::small(2000, 2)).generate_zone(Zone::Z105);
    c.bench_function("pipeline/prepare_client_2000h_seq24", |b| {
        b.iter(|| {
            std::hint::black_box(PreparedClient::prepare("105", &client.demand, 24, 0.8).unwrap())
        })
    });
}

fn bench_federated_round(c: &mut Criterion) {
    let clients = ShenzhenGenerator::new(DatasetConfig::small(360, 3)).generate_all();
    c.bench_function("pipeline/federated_round_3clients_360h", |b| {
        b.iter(|| {
            let template = build_forecaster(8, 0.01, 1);
            let cfg = FederatedConfig {
                rounds: 1,
                epochs_per_round: 1,
                parallel: false,
                ..FederatedConfig::default()
            };
            let mut sim = FederatedSimulation::new(template, cfg);
            for c in &clients {
                let p = PreparedClient::prepare(c.zone.label(), &c.demand, 24, 0.8).unwrap();
                sim.add_client(p.label.clone(), p.train);
            }
            std::hint::black_box(sim.run().unwrap())
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generation, bench_injection, bench_preparation, bench_federated_round
}
criterion_main!(benches);
