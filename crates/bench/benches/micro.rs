//! Criterion micro-benchmarks for the computational substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evfad_core::anomaly::{merge_segments, MitigationStrategy};
use evfad_core::federated::Aggregator;
use evfad_core::nn::{Loss, Seq, Sequential};
use evfad_core::tensor::Matrix;
use evfad_core::timeseries::{impute, metrics, MinMaxScaler};

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 64, |i, j| ((i * 7 + j) % 13) as f64 * 0.1);
    let b = Matrix::from_fn(64, 64, |i, j| ((i + j * 5) % 11) as f64 * 0.2);
    c.bench_function("tensor/matmul_64x64", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)))
    });
}

fn bench_lstm_forward_backward(c: &mut Criterion) {
    let mut model = Sequential::new(1)
        .with(evfad_core::nn::Lstm::new(1, 50, false))
        .with(evfad_core::nn::Dense::new(
            50,
            10,
            evfad_core::nn::Activation::Relu,
        ))
        .with(evfad_core::nn::Dense::new(
            10,
            1,
            evfad_core::nn::Activation::Linear,
        ));
    let samples: Vec<Matrix> = (0..32)
        .map(|i| {
            Matrix::column_vector(
                &(0..24)
                    .map(|t| ((i + t) as f64 * 0.1).sin())
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let batch = Seq::from_samples(&samples);
    c.bench_function("nn/lstm50_forward_batch32_seq24", |bench| {
        bench.iter(|| std::hint::black_box(model.forward(&batch, false)))
    });
    let targets = Seq::single(Matrix::zeros(32, 1));
    c.bench_function("nn/lstm50_train_step_batch32_seq24", |bench| {
        bench.iter(|| {
            let pred = model.forward(&batch, true);
            let (_, grad) = Loss::Mse.evaluate(&pred, &targets);
            model.backward(&grad);
            model.zero_grads();
        })
    });
}

fn bench_fedavg(c: &mut Criterion) {
    let update = |v: f64| evfad_core::federated::LocalUpdate {
        client_id: format!("c{v}"),
        weights: vec![Matrix::filled(51, 200, v), Matrix::filled(1, 200, v)],
        sample_count: 100,
        train_loss: 0.0,
        duration: std::time::Duration::ZERO,
        simulated_extra_seconds: 0.0,
    };
    let updates = vec![update(0.1), update(0.2), update(0.3)];
    c.bench_function("federated/fedavg_3clients_lstm50", |bench| {
        bench.iter(|| std::hint::black_box(Aggregator::FedAvg.aggregate(&updates).unwrap()))
    });
    c.bench_function("federated/median_3clients_lstm50", |bench| {
        bench.iter(|| std::hint::black_box(Aggregator::Median.aggregate(&updates).unwrap()))
    });
}

fn bench_mitigation(c: &mut Criterion) {
    let series: Vec<f64> = (0..4344)
        .map(|i| (i as f64 * 0.26).sin() * 10.0 + 30.0)
        .collect();
    let mask: Vec<bool> = (0..4344).map(|i| i % 97 < 3).collect();
    c.bench_function("anomaly/merge_segments_4344", |bench| {
        bench.iter(|| std::hint::black_box(merge_segments(&mask, 2)))
    });
    c.bench_function("anomaly/linear_interpolation_4344", |bench| {
        bench.iter(|| {
            std::hint::black_box(MitigationStrategy::Linear.apply(&series, &mask).unwrap())
        })
    });
    c.bench_function("timeseries/seasonal_impute_4344", |bench| {
        bench.iter(|| std::hint::black_box(impute::seasonal_naive(&series, &mask, 24).unwrap()))
    });
}

fn bench_scaler_and_metrics(c: &mut Criterion) {
    let series: Vec<f64> = (0..4344)
        .map(|i| (i as f64 * 0.26).sin() * 10.0 + 30.0)
        .collect();
    c.bench_function("timeseries/minmax_fit_transform_4344", |bench| {
        bench.iter_batched(
            || series.clone(),
            |s| {
                let scaler = MinMaxScaler::fit(&s).unwrap();
                std::hint::black_box(scaler.transform(&s))
            },
            BatchSize::SmallInput,
        )
    });
    let pred: Vec<f64> = series.iter().map(|v| v + 1.0).collect();
    c.bench_function("timeseries/regression_report_4344", |bench| {
        bench.iter(|| std::hint::black_box(metrics::report(&series, &pred).unwrap()))
    });
}

fn bench_autoencoder_scoring(c: &mut Criterion) {
    use evfad_core::anomaly::{AnomalyFilter, FilterConfig};
    let train: Vec<f64> = (0..400)
        .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
        .collect();
    let mut cfg = FilterConfig::fast(24);
    cfg.epochs = 2;
    cfg.train_stride = 4;
    let mut filter = AnomalyFilter::new(cfg);
    filter.fit(&train).expect("fit");
    c.bench_function("anomaly/autoencoder_score_400pts", |bench| {
        bench.iter(|| std::hint::black_box(filter.score(&train).unwrap()))
    });
}

// Keep sample counts low: the heavy benches already run for milliseconds each.
fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_matmul, bench_lstm_forward_backward, bench_fedavg,
              bench_mitigation, bench_scaler_and_metrics, bench_autoencoder_scoring
}
criterion_main!(benches);
