//! The study runner: regenerates every table and figure of the paper.

use crate::error::ForecastError;
use crate::pipeline::PreparedClient;
use crate::scenario::{build_all, Architecture, ClientScenarios, Scenario};
use evfad_anomaly::{DetectionReport, FilterConfig};
use evfad_attack::DdosConfig;
use evfad_data::{DatasetConfig, ShenzhenGenerator};
use evfad_federated::{Aggregator, FederatedConfig, FederatedSimulation};
use evfad_nn::{Activation, Adam, Dense, Lstm, Sequential, TrainConfig};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// Preset sizes for the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale smoke configuration (CI, tests).
    Small,
    /// Minutes-scale configuration with readable quality.
    Mid,
    /// The paper's full protocol (4,344 points, LSTM(50), 5 × 10 epochs).
    Paper,
}

impl Scale {
    /// Parses `"small" | "mid" | "paper"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "mid" => Some(Scale::Mid),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Which model each federated client is evaluated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReadOut {
    /// Each client keeps its final-round locally-trained model
    /// (personalised evaluation — matches the paper's per-client numbers).
    #[default]
    Local,
    /// Every client is evaluated with the final global aggregate.
    Global,
}

/// Full configuration of a study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Dataset generation parameters.
    pub dataset: DatasetConfig,
    /// DDoS injection parameters.
    pub attack: DdosConfig,
    /// Anomaly-filter parameters.
    pub filter: FilterConfig,
    /// Forecast window length (paper: 24).
    pub seq_len: usize,
    /// LSTM hidden units (paper: 50).
    pub lstm_units: usize,
    /// Federated rounds (paper: 5).
    pub rounds: usize,
    /// Local epochs per round (paper: 10).
    pub epochs_per_round: usize,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f64,
    /// Train fraction of the temporal split (paper: 0.8).
    pub train_fraction: f64,
    /// Aggregation rule (paper: FedAvg).
    pub aggregator: Aggregator,
    /// Federated read-out mode.
    pub read_out: ReadOut,
    /// Train clients on parallel threads.
    pub parallel: bool,
    /// Master seed.
    pub seed: u64,
}

impl StudyConfig {
    /// A preset configuration at the given scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (timestamps, units, rounds, epochs, filter) = match scale {
            Scale::Small => {
                let mut f = FilterConfig::fast(24);
                f.encoder_units = (12, 6);
                f.epochs = 6;
                f.train_stride = 3;
                (720, 16, 2, 2, f)
            }
            Scale::Mid => {
                let mut f = FilterConfig::fast(24);
                f.encoder_units = (24, 12);
                f.epochs = 12;
                f.train_stride = 2;
                f.learning_rate = 0.005;
                (2160, 32, 3, 6, f)
            }
            Scale::Paper => (4344, 50, 5, 10, FilterConfig::paper(seed)),
        };
        Self {
            dataset: DatasetConfig {
                timestamps,
                seed: seed ^ 0xDA7A,
            },
            attack: DdosConfig::default(),
            filter,
            seq_len: 24,
            lstm_units: units,
            rounds,
            epochs_per_round: epochs,
            batch_size: 32,
            learning_rate: match scale {
                Scale::Paper => 0.001,
                Scale::Mid => 0.003,
                Scale::Small => 0.01,
            },
            train_fraction: 0.8,
            aggregator: Aggregator::FedAvg,
            read_out: ReadOut::Local,
            // Thread-parallel clients only pay off on multi-core hosts; the
            // reported federated time is the simulated distributed time
            // (slowest client per round) either way, and serial execution
            // keeps per-client durations uncontaminated by core contention.
            parallel: false,
            seed,
        }
    }

    /// The paper's full protocol.
    pub fn paper(seed: u64) -> Self {
        Self::at_scale(Scale::Paper, seed)
    }
}

/// Raw-unit forecast quality of one client under one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientMetrics {
    /// Zone label (`"102"` …).
    pub zone: String,
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Outcome of one (scenario, architecture) cell of the paper's design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Data condition.
    pub scenario: Scenario,
    /// Learning architecture.
    pub architecture: Architecture,
    /// Per-client metrics in client order (102, 105, 108).
    pub per_client: Vec<ClientMetrics>,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
}

impl ScenarioResult {
    /// Metrics of the given zone, if present.
    pub fn client(&self, zone: &str) -> Option<&ClientMetrics> {
        self.per_client.iter().find(|c| c.zone == zone)
    }
}

/// Per-client detection quality (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientDetection {
    /// Zone label.
    pub zone: String,
    /// Confusion-matrix summary.
    pub report: DetectionReport,
}

/// Prediction series for Fig. 2 (Client 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Fig2Data {
    /// Timestamp indices of the test targets.
    pub indices: Vec<usize>,
    /// Actual (clean-scenario) test values.
    pub actual: Vec<f64>,
    /// Federated predictions on clean data.
    pub clean_pred: Vec<f64>,
    /// Federated predictions on attacked data.
    pub attacked_pred: Vec<f64>,
    /// Federated predictions on filtered data.
    pub filtered_pred: Vec<f64>,
}

/// The headline numbers quoted in the paper's abstract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineNumbers {
    /// Federated-over-centralized R² improvement on filtered data,
    /// Client 1, in percent (paper: 15.2 %).
    pub r2_improvement_pct: f64,
    /// Fraction of attack-induced R² degradation recovered by filtering,
    /// Client 1, in percent (paper: 47.9 %).
    pub recovery_pct: f64,
    /// Overall detection precision across clients (paper: 0.913).
    pub overall_precision: f64,
    /// Overall false-positive rate in percent (paper: 1.21 %).
    pub fpr_pct: f64,
    /// Training-time reduction of federated vs centralized in percent
    /// (paper: 18.1 %).
    pub time_reduction_pct: f64,
}

/// Everything the paper's evaluation section reports, in one place.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyReport {
    /// The four (scenario, architecture) results of §III-A.
    pub scenarios: Vec<ScenarioResult>,
    /// Per-client detection quality (Table II).
    pub detection: Vec<ClientDetection>,
    /// Pooled detection quality across clients.
    pub overall_detection: DetectionReport,
    /// Client 1 prediction series (Fig. 2).
    pub fig2: Fig2Data,
    /// Seed the study ran with.
    pub seed: u64,
}

/// Builds the paper's forecaster: `LSTM(units) → Dense(10, relu) → Dense(1)`.
pub fn build_forecaster(units: usize, learning_rate: f64, seed: u64) -> Sequential {
    Sequential::new(seed)
        .with(Lstm::new(1, units, false))
        .with(Dense::new(units, 10, Activation::Relu))
        .with(Dense::new(10, 1, Activation::Linear))
        .with_optimizer(Adam::new(learning_rate))
}

fn prepare_scenario_clients(
    scens: &[ClientScenarios],
    scenario: Scenario,
    cfg: &StudyConfig,
) -> Result<Vec<PreparedClient>, ForecastError> {
    scens
        .iter()
        .map(|s| {
            PreparedClient::prepare(
                s.label.clone(),
                s.series(scenario),
                cfg.seq_len,
                cfg.train_fraction,
            )
        })
        .collect()
}

/// Trains the federated architecture on one scenario and evaluates each
/// client in raw units.
fn run_federated_scenario(
    prepared: &[PreparedClient],
    scenario: Scenario,
    cfg: &StudyConfig,
) -> Result<(ScenarioResult, Vec<Vec<f64>>), ForecastError> {
    let template = build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed);
    let fed_cfg = FederatedConfig {
        rounds: cfg.rounds,
        epochs_per_round: cfg.epochs_per_round,
        batch_size: cfg.batch_size,
        aggregator: cfg.aggregator,
        parallel: cfg.parallel,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(template, fed_cfg);
    for p in prepared {
        sim.add_client(p.label.clone(), p.train.clone());
    }
    let outcome = sim.run()?;
    let mut per_client = Vec::with_capacity(prepared.len());
    let mut predictions = Vec::with_capacity(prepared.len());
    for (i, p) in prepared.iter().enumerate() {
        let eval = match cfg.read_out {
            ReadOut::Local => {
                let model = sim.clients_mut()[i].model_mut();
                p.evaluate_raw(model)?
            }
            ReadOut::Global => {
                let mut model = sim.model_with_weights(&outcome.global_weights)?;
                p.evaluate_raw(&mut model)?
            }
        };
        per_client.push(ClientMetrics {
            zone: p.label.clone(),
            mae: eval.mae,
            rmse: eval.rmse,
            r2: eval.r2,
        });
        predictions.push(eval.predicted);
    }
    // Report the time the federation would take on distributed hardware
    // (slowest client per round); on a single-core host the raw wall clock
    // serialises the clients and hides the parallelism the paper measures.
    let train_seconds = outcome
        .total_duration
        .as_secs_f64()
        .min(outcome.simulated_distributed_seconds());
    Ok((
        ScenarioResult {
            scenario,
            architecture: Architecture::Federated,
            per_client,
            train_seconds,
        },
        predictions,
    ))
}

/// Trains the centralized architecture on the pooled (per-client-scaled)
/// data of one scenario and evaluates each client.
fn run_centralized_scenario(
    prepared: &[PreparedClient],
    scenario: Scenario,
    cfg: &StudyConfig,
) -> Result<ScenarioResult, ForecastError> {
    let mut model = build_forecaster(cfg.lstm_units, cfg.learning_rate, cfg.seed ^ 0xC3);
    let mut pooled = Vec::new();
    for p in prepared {
        pooled.extend(p.train.iter().cloned());
    }
    // Centralized step budget, derived from the paper's own timings: its
    // centralized run took 1.18x the federated wall clock (101.46 s vs
    // 85.95 s), i.e. ~1.2x one client's total optimizer steps — far below
    // the full `FEDERATED_ROUNDS x EPOCHS_PER_ROUND` schedule over 3x the
    // data, which would have tripled the wall clock. Pooled data has
    // `clients`-times the samples, so epochs divide by the client count.
    let total_epochs = (cfg.rounds * cfg.epochs_per_round) as f64;
    let central_epochs =
        ((total_epochs * 1.2 / prepared.len().max(1) as f64).round() as usize).max(1);
    let train_cfg = TrainConfig {
        epochs: central_epochs,
        batch_size: cfg.batch_size,
        ..TrainConfig::default()
    };
    let start = Instant::now();
    model.fit(&pooled, &train_cfg)?;
    let train_seconds = start.elapsed().as_secs_f64();
    let mut per_client = Vec::with_capacity(prepared.len());
    for p in prepared {
        let eval = p.evaluate_raw(&mut model)?;
        per_client.push(ClientMetrics {
            zone: p.label.clone(),
            mae: eval.mae,
            rmse: eval.rmse,
            r2: eval.r2,
        });
    }
    Ok(ScenarioResult {
        scenario,
        architecture: Architecture::Centralized,
        per_client,
        train_seconds,
    })
}

/// Runs the complete four-scenario study (the whole of the paper's §III).
///
/// # Errors
///
/// Propagates any preparation, filtering, or training failure.
pub fn run_study(cfg: &StudyConfig) -> Result<StudyReport, ForecastError> {
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let scens = build_all(&clients, &cfg.attack, &cfg.filter, cfg.seed)?;

    let detection: Vec<ClientDetection> = scens
        .iter()
        .map(|s| ClientDetection {
            zone: s.label.clone(),
            report: s.detection,
        })
        .collect();
    let overall_detection = detection
        .iter()
        .fold(DetectionReport::from_flags(&[], &[]), |acc, d| {
            acc.merged(d.report)
        });

    let mut scenarios = Vec::new();
    let mut fig2 = Fig2Data::default();

    for scenario in [Scenario::Clean, Scenario::Attacked, Scenario::Filtered] {
        let prepared = prepare_scenario_clients(&scens, scenario, cfg)?;
        let (result, predictions) = run_federated_scenario(&prepared, scenario, cfg)?;
        // Fig. 2 tracks Client 1 (zone 102).
        match scenario {
            Scenario::Clean => {
                fig2.indices = prepared[0].test_indices.clone();
                fig2.actual = prepared[0].test_actual_raw.clone();
                fig2.clean_pred = predictions[0].clone();
            }
            Scenario::Attacked => fig2.attacked_pred = predictions[0].clone(),
            Scenario::Filtered => fig2.filtered_pred = predictions[0].clone(),
        }
        scenarios.push(result);
        if scenario == Scenario::Filtered {
            scenarios.push(run_centralized_scenario(&prepared, scenario, cfg)?);
        }
    }

    Ok(StudyReport {
        scenarios,
        detection,
        overall_detection,
        fig2,
        seed: cfg.seed,
    })
}

impl StudyReport {
    /// The (scenario, architecture) cell, if present.
    pub fn result(&self, scenario: Scenario, arch: Architecture) -> Option<&ScenarioResult> {
        self.scenarios
            .iter()
            .find(|r| r.scenario == scenario && r.architecture == arch)
    }

    /// Derived headline numbers (paper abstract).
    pub fn headline(&self) -> HeadlineNumbers {
        let get = |s, a| self.result(s, a);
        let clean = get(Scenario::Clean, Architecture::Federated);
        let attacked = get(Scenario::Attacked, Architecture::Federated);
        let filtered = get(Scenario::Filtered, Architecture::Federated);
        let central = get(Scenario::Filtered, Architecture::Centralized);
        let r2 = |r: Option<&ScenarioResult>| {
            r.and_then(|r| r.client("102"))
                .map(|c| c.r2)
                .unwrap_or(f64::NAN)
        };
        let (rc, ra, rf, rx) = (r2(clean), r2(attacked), r2(filtered), r2(central));
        let recovery_pct = if (rc - ra).abs() > 1e-9 {
            (rf - ra) / (rc - ra) * 100.0
        } else {
            f64::NAN
        };
        let time = |r: Option<&ScenarioResult>| r.map(|r| r.train_seconds).unwrap_or(f64::NAN);
        let (tf, tc) = (time(filtered), time(central));
        HeadlineNumbers {
            r2_improvement_pct: (rf - rx) / rx.abs() * 100.0,
            recovery_pct,
            overall_precision: self.overall_detection.precision(),
            fpr_pct: self.overall_detection.false_positive_rate() * 100.0,
            time_reduction_pct: (tc - tf) / tc * 100.0,
        }
    }

    /// Table I: complete performance comparison for Client 1.
    pub fn table1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE I: Complete performance comparison for Client 1."
        );
        let _ = writeln!(
            out,
            "{:<15} {:<13} {:>8} {:>8} {:>8} {:>9}",
            "Scenario", "Architecture", "MAE", "RMSE", "R2", "Time (s)"
        );
        for (scenario, arch) in [
            (Scenario::Clean, Architecture::Federated),
            (Scenario::Attacked, Architecture::Federated),
            (Scenario::Filtered, Architecture::Federated),
            (Scenario::Filtered, Architecture::Centralized),
        ] {
            if let Some(r) = self.result(scenario, arch) {
                if let Some(c) = r.client("102") {
                    let _ = writeln!(
                        out,
                        "{:<15} {:<13} {:>8.4} {:>8.4} {:>8.4} {:>9.2}",
                        scenario.label(),
                        arch.label(),
                        c.mae,
                        c.rmse,
                        c.r2,
                        r.train_seconds
                    );
                }
            }
        }
        out
    }

    /// Table II: client-specific anomaly-detection results.
    pub fn table2(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "TABLE II: Client-Specific Anomaly Detection Results");
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>8} {:>7}",
            "Client", "Precision", "Recall", "F1"
        );
        for (i, d) in self.detection.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<10} {:>10.3} {:>8.3} {:>7.3}",
                format!("{} ({})", i + 1, d.zone),
                d.report.precision(),
                d.report.recall(),
                d.report.f1()
            );
        }
        let _ = writeln!(
            out,
            "Overall precision {:.3}, recall {:.3}, F1 {:.3}, FPR {:.2}%",
            self.overall_detection.precision(),
            self.overall_detection.recall(),
            self.overall_detection.f1(),
            self.overall_detection.false_positive_rate() * 100.0
        );
        out
    }

    /// Table III: client-specific performance comparison for filtered data.
    pub fn table3(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE III: Client-specific performance comparison for filtered data."
        );
        let _ = writeln!(
            out,
            "{:<16} {:<13} {:>8} {:>8} {:>8}",
            "Client (Zone)", "Architecture", "MAE", "RMSE", "R2"
        );
        for zone in ["102", "105", "108"] {
            for arch in [Architecture::Federated, Architecture::Centralized] {
                if let Some(c) = self
                    .result(Scenario::Filtered, arch)
                    .and_then(|r| r.client(zone))
                {
                    let client_no = match zone {
                        "102" => 1,
                        "105" => 2,
                        _ => 3,
                    };
                    let _ = writeln!(
                        out,
                        "{:<16} {:<13} {:>8.4} {:>8.4} {:>8.4}",
                        format!("Client {client_no} ({zone})"),
                        arch.label(),
                        c.mae,
                        c.rmse,
                        c.r2
                    );
                }
            }
        }
        out
    }

    /// Fig. 2: Client 1 scenario R² bars plus the prediction series
    /// (printed as aligned columns for plotting).
    pub fn fig2_text(&self, max_rows: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "FIG 2: Anomaly-resilient federated LSTM, Client 1 (zone 102)"
        );
        let r2 = |s| {
            self.result(s, Architecture::Federated)
                .and_then(|r| r.client("102"))
                .map(|c| c.r2)
                .unwrap_or(f64::NAN)
        };
        let _ = writeln!(
            out,
            "R2 bars: clean={:.4} attacked={:.4} filtered={:.4}",
            r2(Scenario::Clean),
            r2(Scenario::Attacked),
            r2(Scenario::Filtered)
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            "t", "actual", "clean", "attacked", "filtered"
        );
        let n = self.fig2.indices.len().min(max_rows);
        for i in 0..n {
            let _ = writeln!(
                out,
                "{:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                self.fig2.indices[i],
                self.fig2.actual[i],
                self.fig2.clean_pred.get(i).copied().unwrap_or(f64::NAN),
                self.fig2.attacked_pred.get(i).copied().unwrap_or(f64::NAN),
                self.fig2.filtered_pred.get(i).copied().unwrap_or(f64::NAN),
            );
        }
        out
    }

    /// Fig. 3: R² comparison of federated vs centralized on filtered data
    /// (bar-chart series, one pair per client).
    pub fn fig3_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "FIG 3: R2, federated vs centralized LSTM on filtered data"
        );
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12}",
            "Client", "Federated", "Centralized"
        );
        for zone in ["102", "105", "108"] {
            let fed = self
                .result(Scenario::Filtered, Architecture::Federated)
                .and_then(|r| r.client(zone))
                .map(|c| c.r2)
                .unwrap_or(f64::NAN);
            let cen = self
                .result(Scenario::Filtered, Architecture::Centralized)
                .and_then(|r| r.client(zone))
                .map(|c| c.r2)
                .unwrap_or(f64::NAN);
            let _ = writeln!(out, "{:<10} {:>10.4} {:>12.4}", zone, fed, cen);
        }
        out
    }

    /// Headline block (paper abstract numbers).
    pub fn headline_text(&self) -> String {
        let h = self.headline();
        format!(
            "HEADLINE: R2 improvement (fed vs central, filtered) {:+.1}% | \
             attack-degradation recovery {:.1}% | overall precision {:.3} | \
             FPR {:.2}% | training-time reduction {:+.1}%",
            h.r2_improvement_pct,
            h.recovery_pct,
            h.overall_precision,
            h.fpr_pct,
            h.time_reduction_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("Mid"), Some(Scale::Mid));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_config_uses_published_hyperparameters() {
        let cfg = StudyConfig::paper(1);
        assert_eq!(cfg.dataset.timestamps, 4344);
        assert_eq!(cfg.seq_len, 24);
        assert_eq!(cfg.lstm_units, 50);
        assert_eq!(cfg.rounds, 5);
        assert_eq!(cfg.epochs_per_round, 10);
        assert_eq!(cfg.batch_size, 32);
        assert_eq!(cfg.learning_rate, 0.001);
        assert_eq!(cfg.train_fraction, 0.8);
    }

    #[test]
    fn forecaster_matches_paper_architecture() {
        let m = build_forecaster(50, 0.001, 0);
        assert_eq!(m.layer_count(), 3);
        assert_eq!(m.scalar_param_count(), 51 * 200 + 200 + 510 + 11);
    }

    // The full end-to-end study is exercised by the integration tests and
    // bench binaries; here we check the report plumbing with a small run.
    #[test]
    fn small_study_produces_all_cells() {
        let mut cfg = StudyConfig::at_scale(Scale::Small, 11);
        // Shrink further for test speed.
        cfg.dataset.timestamps = 360;
        cfg.lstm_units = 6;
        cfg.rounds = 1;
        cfg.epochs_per_round = 1;
        cfg.filter.encoder_units = (6, 3);
        cfg.filter.epochs = 2;
        cfg.filter.train_stride = 4;
        let report = run_study(&cfg).expect("study");
        assert_eq!(report.scenarios.len(), 4);
        assert!(report
            .result(Scenario::Clean, Architecture::Federated)
            .is_some());
        assert!(report
            .result(Scenario::Filtered, Architecture::Centralized)
            .is_some());
        assert_eq!(report.detection.len(), 3);
        assert_eq!(report.fig2.actual.len(), report.fig2.clean_pred.len());

        let t1 = report.table1();
        assert!(t1.contains("Clean Data"));
        assert!(t1.contains("Centralized"));
        let t2 = report.table2();
        assert!(t2.contains("102") && t2.contains("FPR"));
        let t3 = report.table3();
        assert!(t3.contains("Client 3 (108)"));
        let f2 = report.fig2_text(5);
        assert!(f2.contains("R2 bars"));
        let f3 = report.fig3_text();
        assert!(f3.contains("Federated"));
        let h = report.headline_text();
        assert!(h.contains("precision"));

        // Report serialises (used by EXPERIMENTS.md tooling).
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("scenarios"));
    }
}
