//! The paper's experimental scenarios.

use crate::error::ForecastError;
use evfad_anomaly::{AnomalyFilter, DetectionReport, FilterConfig};
use evfad_attack::{AttackOutcome, DdosConfig, DdosInjector};
use evfad_data::ClientData;
use evfad_timeseries::MinMaxScaler;
use serde::{Deserialize, Serialize};

/// Data condition of an experiment (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Original, unmodified charging patterns.
    Clean,
    /// DDoS-like anomalies injected.
    Attacked,
    /// Attacks detected and mitigated through interpolation.
    Filtered,
}

impl Scenario {
    /// Paper-style label (`"Clean Data"` …).
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Clean => "Clean Data",
            Scenario::Attacked => "Attacked Data",
            Scenario::Filtered => "Filtered Data",
        }
    }
}

/// Learning architecture of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Per-client models coordinated by FedAvg (paper §II-C2).
    Federated,
    /// One model trained on the pooled data (paper §II-C1).
    Centralized,
}

impl Architecture {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Federated => "Federated",
            Architecture::Centralized => "Centralized",
        }
    }
}

/// All three data conditions for one client, plus detection ground truth
/// and quality.
#[derive(Debug, Clone)]
pub struct ClientScenarios {
    /// Zone label (`"102"` …).
    pub label: String,
    /// The clean series.
    pub clean: Vec<f64>,
    /// The attacked series.
    pub attacked: Vec<f64>,
    /// The filtered (detected + mitigated) series.
    pub filtered: Vec<f64>,
    /// Ground-truth attack labels.
    pub truth: Vec<bool>,
    /// Detector decisions on the attacked series.
    pub flags: Vec<bool>,
    /// Detection quality against ground truth.
    pub detection: DetectionReport,
}

impl ClientScenarios {
    /// The series for a given scenario.
    pub fn series(&self, scenario: Scenario) -> &[f64] {
        match scenario {
            Scenario::Clean => &self.clean,
            Scenario::Attacked => &self.attacked,
            Scenario::Filtered => &self.filtered,
        }
    }

    /// Builds the three scenarios for one client:
    ///
    /// 1. inject DDoS anomalies over the whole series;
    /// 2. train the anomaly filter on the (scaled) clean training split —
    ///    the paper trains "exclusively on normal (non-anomalous) data
    ///    segments";
    /// 3. detect on the (scaled) attacked series and mitigate.
    ///
    /// # Errors
    ///
    /// Propagates preparation/filter failures.
    pub fn build(
        client: &ClientData,
        injector: &DdosInjector,
        filter_config: FilterConfig,
        seed: u64,
    ) -> Result<Self, ForecastError> {
        let label = client.zone.label().to_string();
        let clean = client.demand.clone();
        let AttackOutcome {
            series: attacked,
            labels: truth,
            ..
        } = injector.inject(&clean, seed);

        // The paper scales each client's raw data per scenario (before the
        // train/test split) and trains the autoencoder "exclusively on
        // normal (non-anomalous) data segments" — ground truth its authors
        // had by construction, exactly as we do. So: scaler fitted on the
        // full attacked series (the observable data), autoencoder fitted on
        // the full clean series under that scaler.
        let scaler =
            MinMaxScaler::fit(&attacked).map_err(|e| ForecastError::Preparation(e.to_string()))?;
        let clean_scaled = scaler.transform(&clean);
        let attacked_scaled = scaler.transform(&attacked);

        let mut filter = AnomalyFilter::new(filter_config);
        filter
            .fit(&clean_scaled)
            .map_err(|e| ForecastError::Anomaly(e.to_string()))?;
        let detection = filter
            .try_detect(&attacked_scaled)
            .map_err(|e| ForecastError::Anomaly(e.to_string()))?;
        let filtered = filter
            .filter_anomalies(&attacked, &detection.flags)
            .map_err(|e| ForecastError::Anomaly(e.to_string()))?;
        let report = DetectionReport::from_flags(&truth, &detection.flags);
        Ok(Self {
            label,
            clean,
            attacked,
            filtered,
            truth,
            flags: detection.flags,
            detection: report,
        })
    }
}

/// Convenience: builds [`ClientScenarios`] for every client with derived
/// per-client seeds.
///
/// # Errors
///
/// Propagates the first client failure.
pub fn build_all(
    clients: &[ClientData],
    attack: &DdosConfig,
    filter_config: &FilterConfig,
    seed: u64,
) -> Result<Vec<ClientScenarios>, ForecastError> {
    let injector = DdosInjector::new(attack.clone());
    clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut cfg = filter_config.clone();
            cfg.seed = seed.wrapping_add(1000 + i as u64);
            ClientScenarios::build(c, &injector, cfg, seed.wrapping_add(i as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evfad_data::{DatasetConfig, ShenzhenGenerator};

    fn tiny_client() -> ClientData {
        ShenzhenGenerator::new(DatasetConfig::small(400, 3)).generate_zone(evfad_data::Zone::Z102)
    }

    #[test]
    fn labels() {
        assert_eq!(Scenario::Clean.label(), "Clean Data");
        assert_eq!(Scenario::Attacked.label(), "Attacked Data");
        assert_eq!(Scenario::Filtered.label(), "Filtered Data");
        assert_eq!(Architecture::Federated.label(), "Federated");
        assert_eq!(Architecture::Centralized.label(), "Centralized");
    }

    #[test]
    fn build_produces_consistent_lengths() {
        let client = tiny_client();
        let scen =
            ClientScenarios::build(&client, &DdosInjector::default(), FilterConfig::fast(12), 1)
                .expect("build");
        let n = client.demand.len();
        assert_eq!(scen.clean.len(), n);
        assert_eq!(scen.attacked.len(), n);
        assert_eq!(scen.filtered.len(), n);
        assert_eq!(scen.truth.len(), n);
        assert_eq!(scen.flags.len(), n);
        assert_eq!(scen.detection.total(), n);
    }

    #[test]
    fn filtering_reduces_attack_damage() {
        let client = tiny_client();
        let scen =
            ClientScenarios::build(&client, &DdosInjector::default(), FilterConfig::fast(12), 2)
                .expect("build");
        let damage = |series: &[f64]| -> f64 {
            series
                .iter()
                .zip(&scen.clean)
                .map(|(a, c)| (a - c).abs())
                .sum()
        };
        let before = damage(&scen.attacked);
        let after = damage(&scen.filtered);
        assert!(before > 0.0);
        assert!(
            after < before,
            "filtering made things worse: {after} vs {before}"
        );
    }

    #[test]
    fn scenario_accessor_returns_right_series() {
        let client = tiny_client();
        let scen =
            ClientScenarios::build(&client, &DdosInjector::default(), FilterConfig::fast(12), 3)
                .expect("build");
        assert_eq!(scen.series(Scenario::Clean), &scen.clean[..]);
        assert_eq!(scen.series(Scenario::Attacked), &scen.attacked[..]);
        assert_eq!(scen.series(Scenario::Filtered), &scen.filtered[..]);
    }

    #[test]
    fn build_all_gives_one_per_client() {
        let clients = ShenzhenGenerator::new(DatasetConfig::small(400, 5)).generate_all();
        let scens = build_all(
            &clients,
            &evfad_attack::DdosConfig::default(),
            &FilterConfig::fast(12),
            7,
        )
        .expect("build_all");
        assert_eq!(scens.len(), 3);
        assert_eq!(scens[0].label, "102");
        assert_eq!(scens[2].label, "108");
    }
}
