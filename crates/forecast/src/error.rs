//! Error type for the forecasting layer.

use std::error::Error;
use std::fmt;

/// Errors surfaced by pipeline preparation and study execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// A client series is too short for the configured windowing/split.
    InsufficientData {
        /// Client / zone label.
        client: String,
        /// Points available.
        len: usize,
    },
    /// Data preparation failed (scaling, splitting).
    Preparation(String),
    /// Anomaly-filter training or detection failed.
    Anomaly(String),
    /// Model training failed.
    Training(String),
    /// Federated orchestration failed.
    Federated(String),
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::InsufficientData { client, len } => {
                write!(f, "client {client}: {len} points are not enough")
            }
            ForecastError::Preparation(m) => write!(f, "data preparation failed: {m}"),
            ForecastError::Anomaly(m) => write!(f, "anomaly filtering failed: {m}"),
            ForecastError::Training(m) => write!(f, "model training failed: {m}"),
            ForecastError::Federated(m) => write!(f, "federated run failed: {m}"),
        }
    }
}

impl Error for ForecastError {}

impl From<evfad_timeseries::TimeSeriesError> for ForecastError {
    fn from(e: evfad_timeseries::TimeSeriesError) -> Self {
        ForecastError::Preparation(e.to_string())
    }
}

impl From<evfad_anomaly::AnomalyError> for ForecastError {
    fn from(e: evfad_anomaly::AnomalyError) -> Self {
        ForecastError::Anomaly(e.to_string())
    }
}

impl From<evfad_nn::NnError> for ForecastError {
    fn from(e: evfad_nn::NnError) -> Self {
        ForecastError::Training(e.to_string())
    }
}

impl From<evfad_federated::FederatedError> for ForecastError {
    fn from(e: evfad_federated::FederatedError) -> Self {
        ForecastError::Federated(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_conversions() {
        let e = ForecastError::InsufficientData {
            client: "102".into(),
            len: 5,
        };
        assert!(e.to_string().contains("102"));
        let e: ForecastError = evfad_nn::NnError::EmptyDataset.into();
        assert!(matches!(e, ForecastError::Training(_)));
        let e: ForecastError = evfad_anomaly::AnomalyError::NotFitted.into();
        assert!(matches!(e, ForecastError::Anomaly(_)));
        let e: ForecastError = evfad_federated::FederatedError::NoClients.into();
        assert!(matches!(e, ForecastError::Federated(_)));
        let e: ForecastError = evfad_timeseries::TimeSeriesError::EmptySeries.into();
        assert!(matches!(e, ForecastError::Preparation(_)));
    }
}
