//! Forecasting models and the paper's experiment runner.
//!
//! Ties every substrate together into the paper's §III evaluation:
//!
//! * [`pipeline`] — per-client data preparation (scaling, windowing,
//!   temporal split) and model evaluation in raw units;
//! * [`scenario`] — the four experimental scenarios (Clean / Attacked /
//!   Filtered × Federated, Filtered × Centralized) including attack
//!   injection and anomaly filtering;
//! * [`experiment`] — the study runner producing [`StudyReport`], from
//!   which every table (I–III) and figure (2–3) of the paper is printed.
//!
//! # Examples
//!
//! Run a miniature end-to-end study (seconds, not minutes):
//!
//! ```no_run
//! use evfad_forecast::{run_study, Scale, StudyConfig};
//!
//! let report = run_study(&StudyConfig::at_scale(Scale::Small, 42))?;
//! println!("{}", report.table1());
//! println!("{}", report.table2());
//! println!("{}", report.table3());
//! # Ok::<(), evfad_forecast::ForecastError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod error;
pub mod experiment;
pub mod pipeline;
pub mod scenario;

pub use error::ForecastError;
pub use experiment::{
    run_study, ClientMetrics, HeadlineNumbers, Scale, ScenarioResult, StudyConfig, StudyReport,
};
pub use scenario::{Architecture, Scenario};
