//! Classical baseline forecasters.
//!
//! The paper's introduction surveys the pre-deep-learning state of practice
//! (ARIMA-family statistical models and shallow learners). These baselines
//! put the LSTM's advantage in context and are compared in the
//! `ablation_baselines` bench:
//!
//! * [`NaiveForecaster`] — persistence: predict the last observed value;
//! * [`SeasonalNaiveForecaster`] — predict the value one period (24 h) ago;
//! * [`ArForecaster`] — an autoregressive model `y_t = w · y_{t-p..t} + b`
//!   fitted by ridge-regularised least squares (the AR core of ARIMA,
//!   solved exactly rather than iteratively).

use crate::error::ForecastError;
use evfad_tensor::solve::ridge_regression;
use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A model that predicts the next value from a lookback window.
pub trait BaselineForecaster {
    /// Predicts the value following `window` (chronological order).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `window` is shorter than their lookback.
    fn predict_next(&self, window: &[f64]) -> f64;

    /// Stable identifier for bench output.
    fn name(&self) -> &'static str;

    /// Predicts one step ahead for every sliding window of `series`,
    /// returning predictions aligned with
    /// [`windows::sliding`](evfad_timeseries::windows::sliding) targets.
    fn predict_series(&self, series: &[f64], seq_len: usize) -> Vec<f64> {
        evfad_timeseries::windows::sliding(series, seq_len)
            .iter()
            .map(|w| self.predict_next(&w.input))
            .collect()
    }
}

/// Persistence baseline: tomorrow looks like right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NaiveForecaster;

impl BaselineForecaster for NaiveForecaster {
    fn predict_next(&self, window: &[f64]) -> f64 {
        *window.last().expect("window must be non-empty")
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

/// Seasonal persistence: this hour looks like the same hour one period ago.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeasonalNaiveForecaster {
    /// Season length in steps (24 for hourly data with daily seasonality).
    pub period: usize,
}

impl Default for SeasonalNaiveForecaster {
    fn default() -> Self {
        Self { period: 24 }
    }
}

impl BaselineForecaster for SeasonalNaiveForecaster {
    fn predict_next(&self, window: &[f64]) -> f64 {
        assert!(
            window.len() >= self.period,
            "window shorter than the season"
        );
        window[window.len() - self.period]
    }

    fn name(&self) -> &'static str {
        "seasonal_naive"
    }
}

/// Autoregressive model of order `p`, fitted by ridge least squares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArForecaster {
    order: usize,
    /// Coefficients for lags `t-p .. t-1` (chronological), then intercept.
    coefficients: Vec<f64>,
}

impl ArForecaster {
    /// Fits an AR(`order`) model to `series` with ridge penalty `lambda`.
    ///
    /// # Errors
    ///
    /// [`ForecastError::Preparation`] if the series is too short or the
    /// normal equations cannot be solved.
    pub fn fit(series: &[f64], order: usize, lambda: f64) -> Result<Self, ForecastError> {
        if order == 0 || series.len() < order + 2 {
            return Err(ForecastError::Preparation(format!(
                "AR({order}) needs more than {} points",
                order + 1
            )));
        }
        let rows = series.len() - order;
        // Design matrix: [lags | 1], target: next value.
        let x = Matrix::from_fn(rows, order + 1, |i, j| {
            if j == order {
                1.0
            } else {
                series[i + j]
            }
        });
        let y = Matrix::from_fn(rows, 1, |i, _| series[i + order]);
        let w = ridge_regression(&x, &y, lambda)
            .map_err(|e| ForecastError::Preparation(e.to_string()))?;
        Ok(Self {
            order,
            coefficients: w.column(0),
        })
    }

    /// The model order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Fitted coefficients (lags then intercept).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

impl BaselineForecaster for ArForecaster {
    fn predict_next(&self, window: &[f64]) -> f64 {
        assert!(window.len() >= self.order, "window shorter than AR order");
        let lags = &window[window.len() - self.order..];
        let mut acc = self.coefficients[self.order]; // intercept
        for (w, x) in self.coefficients[..self.order].iter().zip(lags) {
            acc += w * x;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "ar_ridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evfad_timeseries::metrics;

    fn daily(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 30.0 + 10.0 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    #[test]
    fn naive_repeats_last() {
        assert_eq!(NaiveForecaster.predict_next(&[1.0, 2.0, 3.0]), 3.0);
        assert_eq!(NaiveForecaster.name(), "naive");
    }

    #[test]
    fn seasonal_naive_is_exact_on_pure_seasonality() {
        let series = daily(24 * 10);
        let model = SeasonalNaiveForecaster::default();
        let preds = model.predict_series(&series, 24);
        let actual: Vec<f64> = series[24..].to_vec();
        let r2 = metrics::r2(&actual, &preds).unwrap();
        assert!(r2 > 0.999, "r2 = {r2}");
    }

    #[test]
    fn ar_learns_an_ar2_process() {
        // y_t = 0.6 y_{t-1} - 0.2 y_{t-2} + 1, deterministic.
        let mut series = vec![1.0, 2.0];
        for t in 2..300 {
            let v = 0.6 * series[t - 1] - 0.2 * series[t - 2] + 1.0;
            series.push(v);
        }
        let model = ArForecaster::fit(&series[..250], 2, 1e-8).unwrap();
        // Coefficients: [w_{t-2}, w_{t-1}, intercept] in chronological order.
        let c = model.coefficients();
        assert!((c[0] + 0.2).abs() < 1e-3, "{c:?}");
        assert!((c[1] - 0.6).abs() < 1e-3, "{c:?}");
        assert!((c[2] - 1.0).abs() < 1e-2, "{c:?}");
    }

    #[test]
    fn ar_beats_naive_on_seasonal_data() {
        let series = daily(24 * 20);
        let split = 24 * 16;
        let model = ArForecaster::fit(&series[..split], 24, 1e-6).unwrap();
        let tail = &series[split - 24..];
        let ar_preds = model.predict_series(tail, 24);
        let naive_preds = NaiveForecaster.predict_series(tail, 24);
        let actual: Vec<f64> = tail[24..].to_vec();
        let ar_mae = metrics::mae(&actual, &ar_preds).unwrap();
        let naive_mae = metrics::mae(&actual, &naive_preds).unwrap();
        assert!(ar_mae < naive_mae, "ar {ar_mae} vs naive {naive_mae}");
    }

    #[test]
    fn ar_rejects_degenerate_inputs() {
        assert!(ArForecaster::fit(&[1.0, 2.0], 5, 0.1).is_err());
        assert!(ArForecaster::fit(&daily(100), 0, 0.1).is_err());
    }

    #[test]
    fn predict_series_aligns_with_targets() {
        let series = daily(100);
        let preds = NaiveForecaster.predict_series(&series, 24);
        assert_eq!(preds.len(), 100 - 24);
        // Naive prediction for target index i is series[i - 1].
        assert_eq!(preds[0], series[23]);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn seasonal_panics_on_short_window() {
        let _ = SeasonalNaiveForecaster::default().predict_next(&[1.0; 10]);
    }
}
