//! Per-client data preparation and raw-unit evaluation.

use crate::error::ForecastError;
use evfad_nn::{Sample, Sequential};
use evfad_tensor::Matrix;
use evfad_timeseries::{metrics, split, windows, MinMaxScaler};
use serde::{Deserialize, Serialize};

/// A client's series prepared for supervised learning.
///
/// Scaling follows the paper: a `MinMaxScaler` is fitted per client (on the
/// training portion, so attack spikes in the test period legitimately
/// exceed 1.0), sequences of `seq_len` are built over the full scaled
/// series, and windows are assigned to train/test by the temporal position
/// of their *target*.
#[derive(Debug, Clone)]
pub struct PreparedClient {
    /// Zone label (`"102"` …).
    pub label: String,
    /// Training windows (scaled).
    pub train: Vec<Sample>,
    /// Test windows (scaled).
    pub test: Vec<Sample>,
    /// Raw-unit actual values aligned with `test` (for metric computation).
    pub test_actual_raw: Vec<f64>,
    /// Timestamp index of each test target in the source series.
    pub test_indices: Vec<usize>,
    /// The per-client scaler (needed to invert predictions).
    pub scaler: MinMaxScaler,
    /// Index of the train/test boundary in the source series.
    pub boundary: usize,
}

impl PreparedClient {
    /// Prepares a raw series.
    ///
    /// # Errors
    ///
    /// * [`ForecastError::InsufficientData`] if fewer than
    ///   `seq_len + 2` points survive the split;
    /// * [`ForecastError::Preparation`] for scaling/splitting failures.
    pub fn prepare(
        label: impl Into<String>,
        series: &[f64],
        seq_len: usize,
        train_fraction: f64,
    ) -> Result<Self, ForecastError> {
        let label = label.into();
        if series.len() < seq_len + 2 {
            return Err(ForecastError::InsufficientData {
                client: label,
                len: series.len(),
            });
        }
        let boundary = split::boundary(series.len(), train_fraction)?;
        let scaler = MinMaxScaler::fit(&series[..boundary])?;
        let scaled = scaler.transform(series);
        let all_windows = windows::sliding(&scaled, seq_len);
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut test_actual_raw = Vec::new();
        let mut test_indices = Vec::new();
        for w in &all_windows {
            let sample = Sample::new(
                Matrix::column_vector(&w.input),
                Matrix::from_vec(1, 1, vec![w.target]),
            );
            if w.target_index < boundary {
                train.push(sample);
            } else {
                test.push(sample);
                test_actual_raw.push(series[w.target_index]);
                test_indices.push(w.target_index);
            }
        }
        if train.is_empty() || test.is_empty() {
            return Err(ForecastError::InsufficientData {
                client: label,
                len: series.len(),
            });
        }
        Ok(Self {
            label,
            train,
            test,
            test_actual_raw,
            test_indices,
            scaler,
            boundary,
        })
    }

    /// Runs `model` over the test windows and returns raw-unit predictions.
    pub fn predict_raw(&self, model: &mut Sequential) -> Vec<f64> {
        let inputs: Vec<Matrix> = self.test.iter().map(|s| s.input.clone()).collect();
        let scaled: Vec<f64> = model.predict(&inputs).iter().map(|m| m[(0, 0)]).collect();
        self.scaler.inverse_transform(&scaled)
    }

    /// Evaluates `model` on the test windows in raw units.
    ///
    /// # Errors
    ///
    /// Propagates metric errors (cannot occur for non-empty test sets).
    pub fn evaluate_raw(&self, model: &mut Sequential) -> Result<EvalOutcome, ForecastError> {
        let predicted = self.predict_raw(model);
        let report = metrics::report(&self.test_actual_raw, &predicted)?;
        Ok(EvalOutcome {
            predicted,
            mae: report.mae,
            rmse: report.rmse,
            r2: report.r2,
        })
    }
}

/// Raw-unit evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Raw-unit predictions aligned with the prepared test targets.
    pub predicted: Vec<f64>,
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use evfad_nn::forecaster_model;

    fn daily_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 30.0 + 12.0 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    #[test]
    fn split_respects_boundary() {
        let series = daily_series(200);
        let p = PreparedClient::prepare("102", &series, 24, 0.8).expect("prepare");
        assert_eq!(p.boundary, 160);
        // Train targets strictly before the boundary, test at/after.
        assert_eq!(p.train.len(), 160 - 24);
        assert_eq!(p.test.len(), 40);
        assert!(p.test_indices.iter().all(|&i| i >= 160));
    }

    #[test]
    fn test_actual_aligns_with_indices() {
        let series = daily_series(150);
        let p = PreparedClient::prepare("x", &series, 12, 0.8).expect("prepare");
        for (raw, &idx) in p.test_actual_raw.iter().zip(&p.test_indices) {
            assert_eq!(*raw, series[idx]);
        }
    }

    #[test]
    fn scaler_fitted_on_train_only() {
        let mut series = daily_series(100);
        series[95] = 1e4; // spike only in test region
        let p = PreparedClient::prepare("x", &series, 12, 0.8).expect("prepare");
        assert!(p.scaler.data_max() < 100.0, "test spike leaked into scaler");
    }

    #[test]
    fn too_short_series_rejected() {
        assert!(matches!(
            PreparedClient::prepare("x", &[1.0; 10], 24, 0.8),
            Err(ForecastError::InsufficientData { .. })
        ));
    }

    #[test]
    fn evaluate_raw_beats_trivial_after_training() {
        let series = daily_series(400);
        let p = PreparedClient::prepare("x", &series, 24, 0.8).expect("prepare");
        let mut model = forecaster_model(8, 3).with_optimizer(evfad_nn::Adam::new(0.01));
        let cfg = evfad_nn::TrainConfig {
            epochs: 12,
            ..evfad_nn::TrainConfig::default()
        };
        model.fit(&p.train, &cfg).expect("fit");
        let out = p.evaluate_raw(&mut model).expect("eval");
        // A clean sinusoid should be learnable to high R².
        assert!(out.r2 > 0.8, "r2 = {}", out.r2);
        assert_eq!(out.predicted.len(), p.test.len());
    }

    #[test]
    fn predictions_are_in_raw_units() {
        let series = daily_series(300);
        let p = PreparedClient::prepare("x", &series, 24, 0.8).expect("prepare");
        let mut model = forecaster_model(8, 3).with_optimizer(evfad_nn::Adam::new(0.01));
        let cfg = evfad_nn::TrainConfig {
            epochs: 10,
            ..evfad_nn::TrainConfig::default()
        };
        model.fit(&p.train, &cfg).expect("fit");
        let preds = p.predict_raw(&mut model);
        // Raw scale is ~18..42; scaled would be ~0..1.
        assert!(preds.iter().all(|&v| v > 5.0 && v < 60.0), "{preds:?}");
    }
}
