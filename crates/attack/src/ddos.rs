//! Episode-based DDoS anomaly injection for hourly demand series.

use crate::traffic::TrafficModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One contiguous attack episode on the hourly series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackEpisode {
    /// First attacked hour (inclusive).
    pub start: usize,
    /// One past the last attacked hour (exclusive).
    pub end: usize,
}

impl AttackEpisode {
    /// Number of attacked hours.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the episode is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Configuration for [`DdosInjector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdosConfig {
    /// Target fraction of hours under attack (default 15 %; see
    /// [`DdosConfig::default`] for the calibration rationale).
    pub attack_fraction: f64,
    /// Minimum episode length in hours.
    pub min_episode_hours: usize,
    /// Maximum episode length in hours.
    pub max_episode_hours: usize,
    /// Minimum normal gap between consecutive episodes, in hours. Keeping
    /// this at two autoencoder windows (48 h) guarantees every normal point
    /// has an attack-free window on at least one side, which is what keeps
    /// the detector's false-positive rate at the paper's ~1 % level.
    pub min_gap_hours: usize,
    /// Peak within-episode attack intensity in `[0, 1]`
    /// (1 maps to the documented 10.6x packet multiplier).
    pub peak_intensity: f64,
    /// How strongly the packet-level multiplier carries into charging
    /// volume. `1.0` applies the raw multiplier; smaller values model the
    /// partial absorption of network load into recorded charging volume.
    pub coupling: f64,
    /// Packet-level traffic model used for the intensity translation.
    pub traffic: TrafficModel,
}

impl Default for DdosConfig {
    /// Defaults calibrated against the paper's reported detection operating
    /// point: its precision 0.913 / recall 0.58 / FPR 1.21 % jointly imply
    /// roughly 15–20 % of hours under attack, with episode edges mild
    /// enough to be missed.
    fn default() -> Self {
        Self {
            attack_fraction: 0.12,
            min_episode_hours: 3,
            max_episode_hours: 10,
            min_gap_hours: 48,
            peak_intensity: 1.0,
            coupling: 0.3,
            traffic: TrafficModel::paper(),
        }
    }
}

/// Result of injecting attacks into a series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The attacked series (same length as the input).
    pub series: Vec<f64>,
    /// Ground truth: `labels[i]` is `true` iff hour `i` was attacked.
    pub labels: Vec<bool>,
    /// The attack episodes, in chronological order, non-overlapping.
    pub episodes: Vec<AttackEpisode>,
}

impl AttackOutcome {
    /// Number of attacked hours.
    pub fn attacked_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Fraction of hours attacked.
    pub fn attacked_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.attacked_count() as f64 / self.labels.len() as f64
        }
    }
}

/// Injects DDoS-like volume spikes into an hourly charging series.
///
/// Attacks arrive as episodes of `min..=max` hours. Within an episode the
/// intensity follows a triangular ramp (build-up, peak, decay) with per-hour
/// jitter, matching the "sustained high-volume irregular spikes" the paper's
/// detector targets while leaving episode edges mild — which is what makes
/// detection recall imperfect, as in Table II.
///
/// # Examples
///
/// ```
/// use evfad_attack::{DdosConfig, DdosInjector};
///
/// let clean = vec![10.0; 1000];
/// let out = DdosInjector::new(DdosConfig::default()).inject(&clean, 7);
/// let frac = out.attacked_fraction();
/// assert!(frac > 0.06 && frac < 0.16, "fraction {frac}");
/// ```
#[derive(Debug, Clone)]
pub struct DdosInjector {
    config: DdosConfig,
}

impl DdosInjector {
    /// Creates an injector with the given configuration.
    pub fn new(config: DdosConfig) -> Self {
        Self { config }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &DdosConfig {
        &self.config
    }

    /// Draws non-overlapping attack episodes covering roughly
    /// `attack_fraction` of `len` hours.
    pub fn schedule(&self, len: usize, rng: &mut StdRng) -> Vec<AttackEpisode> {
        let target = (len as f64 * self.config.attack_fraction).round() as usize;
        let mut episodes: Vec<AttackEpisode> = Vec::new();
        let mut attacked = 0usize;
        let mut guard = 0;
        while attacked < target && guard < 10_000 {
            guard += 1;
            let dur = rng.gen_range(self.config.min_episode_hours..=self.config.max_episode_hours);
            let dur = dur.min(target - attacked + self.config.min_episode_hours);
            if dur >= len {
                break;
            }
            let start = rng.gen_range(0..len - dur);
            let candidate = AttackEpisode {
                start,
                end: start + dur,
            };
            // Keep a guard band between episodes so ground-truth segments
            // stay distinct and normal points retain attack-free windows.
            let gap = self.config.min_gap_hours.max(1);
            let overlaps = episodes.iter().any(|e| {
                candidate.start < e.end.saturating_add(gap) && e.start < candidate.end + gap
            });
            if overlaps {
                continue;
            }
            attacked += dur;
            episodes.push(candidate);
        }
        episodes.sort_by_key(|e| e.start);
        episodes
    }

    /// Injects attacks into `series` using a deterministic RNG stream
    /// derived from `seed`.
    pub fn inject(&self, series: &[f64], seed: u64) -> AttackOutcome {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDD05_DD05);
        let episodes = self.schedule(series.len(), &mut rng);
        let mut out = series.to_vec();
        let mut labels = vec![false; series.len()];
        for ep in &episodes {
            let dur = ep.len().max(1);
            for (offset, idx) in (ep.start..ep.end).enumerate() {
                // Triangular ramp: 0 at edges, 1 at the episode midpoint.
                let pos = (offset as f64 + 0.5) / dur as f64;
                let ramp = 1.0 - (2.0 * pos - 1.0).abs();
                let intensity = (self.config.peak_intensity * (0.05 + 0.95 * ramp)).clamp(0.0, 1.0);
                let packet_mult = self.config.traffic.hourly_multiplier(intensity, &mut rng);
                // Translate packet-level inflation into volume inflation.
                let volume_mult = 1.0 + (packet_mult - 1.0) * self.config.coupling;
                out[idx] = series[idx] * volume_mult;
                labels[idx] = true;
            }
        }
        AttackOutcome {
            series: out,
            labels,
            episodes,
        }
    }
}

impl Default for DdosInjector {
    fn default() -> Self {
        Self::new(DdosConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize) -> Vec<f64> {
        vec![20.0; n]
    }

    #[test]
    fn labels_match_episodes_exactly() {
        let out = DdosInjector::default().inject(&flat(2000), 1);
        let mut expected = vec![false; 2000];
        for ep in &out.episodes {
            for e in expected.iter_mut().take(ep.end).skip(ep.start) {
                *e = true;
            }
        }
        assert_eq!(out.labels, expected);
    }

    #[test]
    fn attacked_points_are_inflated() {
        let clean = flat(2000);
        let out = DdosInjector::default().inject(&clean, 2);
        for (i, &v) in clean.iter().enumerate() {
            if out.labels[i] {
                assert!(out.series[i] > v, "attacked point not inflated");
            } else {
                assert_eq!(out.series[i], v);
            }
        }
    }

    #[test]
    fn attack_fraction_close_to_target() {
        let out = DdosInjector::default().inject(&flat(5000), 3);
        let frac = out.attacked_fraction();
        assert!((0.08..=0.16).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn episodes_respect_length_bounds_and_do_not_overlap() {
        let cfg = DdosConfig::default();
        let out = DdosInjector::new(cfg.clone()).inject(&flat(5000), 4);
        for w in out.episodes.windows(2) {
            assert!(w[0].end <= w[1].start, "episodes overlap");
        }
        for ep in &out.episodes {
            assert!(!ep.is_empty() && ep.len() <= cfg.max_episode_hours + cfg.min_episode_hours);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let inj = DdosInjector::default();
        assert_eq!(inj.inject(&flat(600), 9), inj.inject(&flat(600), 9));
        assert_ne!(
            inj.inject(&flat(600), 9).episodes,
            inj.inject(&flat(600), 10).episodes
        );
    }

    #[test]
    fn peak_hours_much_larger_than_edge_hours() {
        // With a long flat series and default config, episode midpoints are
        // inflated more than episode edges on average.
        let clean = flat(8000);
        let out = DdosInjector::default().inject(&clean, 5);
        let mut edge_ratio = 0.0;
        let mut peak_ratio = 0.0;
        let mut n = 0.0;
        for ep in &out.episodes {
            if ep.len() < 4 {
                continue;
            }
            let mid = (ep.start + ep.end) / 2;
            edge_ratio += out.series[ep.start] / clean[ep.start];
            peak_ratio += out.series[mid] / clean[mid];
            n += 1.0;
        }
        assert!(n > 0.0);
        assert!(peak_ratio / n > edge_ratio / n * 1.3);
    }

    #[test]
    fn zero_fraction_injects_nothing() {
        let cfg = DdosConfig {
            attack_fraction: 0.0,
            ..DdosConfig::default()
        };
        let out = DdosInjector::new(cfg).inject(&flat(500), 6);
        assert_eq!(out.attacked_count(), 0);
        assert_eq!(out.series, flat(500));
    }

    #[test]
    fn short_series_handled() {
        let out = DdosInjector::default().inject(&flat(5), 7);
        assert_eq!(out.series.len(), 5);
    }

    #[test]
    fn stronger_coupling_bigger_spikes() {
        let weak = DdosInjector::new(DdosConfig {
            coupling: 0.1,
            ..DdosConfig::default()
        })
        .inject(&flat(3000), 8);
        let strong = DdosInjector::new(DdosConfig {
            coupling: 1.0,
            ..DdosConfig::default()
        })
        .inject(&flat(3000), 8);
        let max = |v: &[f64]| v.iter().copied().fold(0.0_f64, f64::max);
        assert!(max(&strong.series) > max(&weak.series));
    }
}
