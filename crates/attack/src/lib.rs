//! DDoS traffic modelling and data-integrity attack injection.
//!
//! The paper derives its attack simulation from real DDoS measurements:
//! normal IP traffic of 33,000 packets/s versus 350,500 packets/s under
//! attack — a 10.6x intensity multiplier — observed in 100 ms slots
//! (§II-B). [`traffic`] reproduces that packet-level model; [`DdosInjector`]
//! translates it into "irregular volume spikes" on the hourly EV-charging
//! series, together with ground-truth labels for evaluating detection.
//!
//! [`vectors`] adds the attack types the paper lists as future work
//! (false-data injection, temporal disruption, ramp and pulse attacks) so
//! the detection ablations in `evfad-bench` can stress the detector beyond
//! volume spikes.
//!
//! # Examples
//!
//! ```
//! use evfad_attack::{DdosConfig, DdosInjector};
//!
//! let clean: Vec<f64> = (0..500).map(|i| 30.0 + (i as f64 * 0.26).sin() * 10.0).collect();
//! let outcome = DdosInjector::new(DdosConfig::default()).inject(&clean, 42);
//! assert_eq!(outcome.series.len(), clean.len());
//! assert_eq!(outcome.labels.len(), clean.len());
//! assert!(outcome.attacked_count() > 0);
//! // Unattacked points are untouched.
//! for i in 0..clean.len() {
//!     if !outcome.labels[i] {
//!         assert_eq!(outcome.series[i], clean[i]);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddos;
pub mod traffic;
pub mod vectors;

pub use ddos::{AttackEpisode, AttackOutcome, DdosConfig, DdosInjector};
pub use traffic::{TrafficModel, ATTACK_PPS, INTENSITY_MULTIPLIER, NORMAL_PPS, SLOT_MS};
