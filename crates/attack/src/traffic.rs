//! Packet-level DDoS traffic model.
//!
//! Reproduces the network statistics the paper adapts its attack simulation
//! from: normal traffic averaging 33,000 packets per second, attack traffic
//! reaching 350,500 packets per second (a 10.6x multiplier), measured in
//! 100 ms slots.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Normal IP traffic rate in packets per second (paper §II-B).
pub const NORMAL_PPS: f64 = 33_000.0;

/// Attack traffic rate in packets per second (paper §II-B).
pub const ATTACK_PPS: f64 = 350_500.0;

/// The documented intensity multiplier (`ATTACK_PPS / NORMAL_PPS` ≈ 10.6).
pub const INTENSITY_MULTIPLIER: f64 = ATTACK_PPS / NORMAL_PPS;

/// Measurement slot width in milliseconds.
pub const SLOT_MS: u64 = 100;

/// A per-slot packet-rate simulator for normal and attack conditions.
///
/// Slot-level rates fluctuate around the documented means with multiplicative
/// jitter; an attacked slot ramps toward the attack rate according to the
/// episode's intensity in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use evfad_attack::TrafficModel;
/// use rand::SeedableRng;
///
/// let model = TrafficModel::paper();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let slots = model.simulate_slots(600, 1.0, &mut rng); // one minute, full attack
/// let mean_per_slot = slots.iter().sum::<f64>() / slots.len() as f64;
/// // Slots are 100 ms, so the per-slot count is one tenth of the pps rate.
/// assert!(mean_per_slot > evfad_attack::NORMAL_PPS / 10.0 * 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Mean normal packet rate (packets/s).
    pub normal_pps: f64,
    /// Mean packet rate at full attack intensity (packets/s).
    pub attack_pps: f64,
    /// Relative slot-level jitter (lognormal-ish multiplicative noise).
    pub jitter: f64,
}

impl TrafficModel {
    /// The model with the paper's published constants.
    pub fn paper() -> Self {
        Self {
            normal_pps: NORMAL_PPS,
            attack_pps: ATTACK_PPS,
            jitter: 0.15,
        }
    }

    /// Mean packet rate at attack `intensity` in `[0, 1]`
    /// (0 = normal traffic, 1 = full documented attack rate).
    pub fn mean_rate(&self, intensity: f64) -> f64 {
        let intensity = intensity.clamp(0.0, 1.0);
        self.normal_pps + (self.attack_pps - self.normal_pps) * intensity
    }

    /// The volume multiplier implied by attack `intensity`: the ratio of the
    /// attacked rate to the normal rate. At `intensity = 1` this is the
    /// paper's 10.6x.
    pub fn intensity_multiplier(&self, intensity: f64) -> f64 {
        self.mean_rate(intensity) / self.normal_pps
    }

    /// Simulates per-slot (100 ms) packet counts at a fixed attack
    /// intensity.
    pub fn simulate_slots(&self, slots: usize, intensity: f64, rng: &mut impl Rng) -> Vec<f64> {
        let mean = self.mean_rate(intensity);
        (0..slots)
            .map(|_| {
                let noise = 1.0 + rng.gen_range(-self.jitter..self.jitter);
                (mean * noise / (1000.0 / SLOT_MS as f64)).max(0.0)
            })
            .collect()
    }

    /// Estimates the hourly volume multiplier for an attacked hour by
    /// simulating slot traffic and comparing against normal traffic —
    /// the "systematic translation" step of the paper's §II-B.
    pub fn hourly_multiplier(&self, intensity: f64, rng: &mut impl Rng) -> f64 {
        // 100 slots (10 s) is enough for a stable mean estimate.
        let attacked = self.simulate_slots(100, intensity, rng);
        let normal = self.simulate_slots(100, 0.0, rng);
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        sum(&attacked) / sum(&normal).max(f64::MIN_POSITIVE)
    }
}

impl Default for TrafficModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn published_constants() {
        assert_eq!(NORMAL_PPS, 33_000.0);
        assert_eq!(ATTACK_PPS, 350_500.0);
        assert!((INTENSITY_MULTIPLIER - 10.621).abs() < 0.01);
        assert_eq!(SLOT_MS, 100);
    }

    #[test]
    fn mean_rate_interpolates() {
        let m = TrafficModel::paper();
        assert_eq!(m.mean_rate(0.0), NORMAL_PPS);
        assert_eq!(m.mean_rate(1.0), ATTACK_PPS);
        let half = m.mean_rate(0.5);
        assert!(half > NORMAL_PPS && half < ATTACK_PPS);
    }

    #[test]
    fn intensity_clamped() {
        let m = TrafficModel::paper();
        assert_eq!(m.mean_rate(-1.0), NORMAL_PPS);
        assert_eq!(m.mean_rate(5.0), ATTACK_PPS);
    }

    #[test]
    fn full_attack_multiplier_near_documented() {
        let m = TrafficModel::paper();
        let mut rng = StdRng::seed_from_u64(3);
        let mult = m.hourly_multiplier(1.0, &mut rng);
        assert!(
            (mult - INTENSITY_MULTIPLIER).abs() < 0.5,
            "multiplier {mult}"
        );
    }

    #[test]
    fn zero_intensity_multiplier_near_one() {
        let m = TrafficModel::paper();
        let mut rng = StdRng::seed_from_u64(4);
        let mult = m.hourly_multiplier(0.0, &mut rng);
        assert!((mult - 1.0).abs() < 0.1, "multiplier {mult}");
    }

    #[test]
    fn slots_scale_with_slot_width() {
        let m = TrafficModel::paper();
        let mut rng = StdRng::seed_from_u64(5);
        let slots = m.simulate_slots(1000, 0.0, &mut rng);
        let per_second = slots.iter().sum::<f64>() / slots.len() as f64 * 10.0;
        assert!((per_second - NORMAL_PPS).abs() < NORMAL_PPS * 0.05);
    }

    #[test]
    fn multiplier_monotone_in_intensity() {
        let m = TrafficModel::paper();
        assert!(m.intensity_multiplier(0.2) < m.intensity_multiplier(0.8));
        assert!((m.intensity_multiplier(1.0) - INTENSITY_MULTIPLIER).abs() < 1e-12);
    }
}
