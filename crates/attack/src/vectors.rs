//! Additional attack vectors (paper §III-G future work).
//!
//! The paper's detector targets sustained high-volume spikes and explicitly
//! defers "subtle data manipulation or temporal pattern disruption" to
//! future work. These injectors implement those vectors so the ablation
//! benches can quantify how the LSTM-autoencoder detector degrades on them.

use crate::ddos::{AttackEpisode, AttackOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An alternative attack vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackVector {
    /// False-data injection: a constant multiplicative bias over the
    /// episode — subtle, no spikes.
    FalseDataInjection {
        /// Multiplicative bias (e.g. `1.15` = +15 %).
        bias: f64,
    },
    /// Temporal disruption: the episode's values are reversed in time,
    /// destroying the daily shape without changing the value distribution.
    TemporalDisruption,
    /// Ramp attack: linearly growing inflation across the episode.
    Ramp {
        /// Multiplier reached at the episode end.
        peak: f64,
    },
    /// Pulse attack: alternating hours are inflated, the rest untouched.
    Pulse {
        /// Multiplier applied on the inflated hours.
        magnitude: f64,
    },
}

impl AttackVector {
    /// Stable identifier used in bench output.
    pub fn name(&self) -> &'static str {
        match self {
            AttackVector::FalseDataInjection { .. } => "false_data_injection",
            AttackVector::TemporalDisruption => "temporal_disruption",
            AttackVector::Ramp { .. } => "ramp",
            AttackVector::Pulse { .. } => "pulse",
        }
    }

    /// Applies the vector to `series[episode]`, mutating in place.
    fn apply(&self, series: &mut [f64], episode: AttackEpisode) {
        let span = &mut series[episode.start..episode.end];
        match *self {
            AttackVector::FalseDataInjection { bias } => {
                for v in span.iter_mut() {
                    *v *= bias;
                }
            }
            AttackVector::TemporalDisruption => span.reverse(),
            AttackVector::Ramp { peak } => {
                let n = span.len().max(1) as f64;
                for (i, v) in span.iter_mut().enumerate() {
                    let frac = (i + 1) as f64 / n;
                    *v *= 1.0 + (peak - 1.0) * frac;
                }
            }
            AttackVector::Pulse { magnitude } => {
                for (i, v) in span.iter_mut().enumerate() {
                    if i % 2 == 0 {
                        *v *= magnitude;
                    }
                }
            }
        }
    }
}

/// Injects `vector` attacks over episodes covering roughly
/// `attack_fraction` of the series.
///
/// Labels cover every hour of every episode (for `Pulse`, both inflated and
/// untouched hours inside an episode count as attacked — the episode is the
/// ground-truth unit, as in the DDoS injector).
///
/// # Examples
///
/// ```
/// use evfad_attack::vectors::{inject_vector, AttackVector};
///
/// let clean = vec![10.0; 600];
/// let out = inject_vector(&clean, AttackVector::Ramp { peak: 3.0 }, 0.05, 1);
/// assert!(out.attacked_count() > 0);
/// ```
pub fn inject_vector(
    series: &[f64],
    vector: AttackVector,
    attack_fraction: f64,
    seed: u64,
) -> AttackOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7EC7_0BAD);
    let len = series.len();
    let target = (len as f64 * attack_fraction).round() as usize;
    let mut episodes: Vec<AttackEpisode> = Vec::new();
    let mut attacked = 0usize;
    let mut guard = 0;
    while attacked < target && guard < 10_000 {
        guard += 1;
        let dur = rng.gen_range(4..=12).min(len.saturating_sub(1));
        if dur == 0 || dur >= len {
            break;
        }
        let start = rng.gen_range(0..len - dur);
        let cand = AttackEpisode {
            start,
            end: start + dur,
        };
        if episodes
            .iter()
            .any(|e| cand.start < e.end + 1 && e.start < cand.end + 1)
        {
            continue;
        }
        attacked += dur;
        episodes.push(cand);
    }
    episodes.sort_by_key(|e| e.start);

    let mut out = series.to_vec();
    let mut labels = vec![false; len];
    for ep in &episodes {
        vector.apply(&mut out, *ep);
        for l in labels.iter_mut().take(ep.end).skip(ep.start) {
            *l = true;
        }
    }
    AttackOutcome {
        series: out,
        labels,
        episodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| 10.0 + i as f64 * 0.01).collect()
    }

    #[test]
    fn fdi_applies_constant_bias() {
        let clean = vec![10.0; 400];
        let out = inject_vector(
            &clean,
            AttackVector::FalseDataInjection { bias: 1.2 },
            0.1,
            3,
        );
        for i in 0..clean.len() {
            if out.labels[i] {
                assert!((out.series[i] - 12.0).abs() < 1e-12);
            } else {
                assert_eq!(out.series[i], 10.0);
            }
        }
    }

    #[test]
    fn temporal_disruption_preserves_values() {
        let clean = ramp_series(500);
        let out = inject_vector(&clean, AttackVector::TemporalDisruption, 0.1, 4);
        let mut a: Vec<f64> = clean.clone();
        let mut b: Vec<f64> = out.series.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b, "value multiset must be preserved");
        assert_ne!(clean, out.series, "order must change");
    }

    #[test]
    fn ramp_grows_within_episode() {
        let clean = vec![10.0; 600];
        let out = inject_vector(&clean, AttackVector::Ramp { peak: 4.0 }, 0.08, 5);
        for ep in &out.episodes {
            if ep.len() >= 3 {
                assert!(out.series[ep.end - 1] > out.series[ep.start]);
            }
        }
    }

    #[test]
    fn pulse_alternates() {
        let clean = vec![10.0; 600];
        let out = inject_vector(&clean, AttackVector::Pulse { magnitude: 5.0 }, 0.08, 6);
        for ep in &out.episodes {
            assert_eq!(out.series[ep.start], 50.0);
            if ep.len() >= 2 {
                assert_eq!(out.series[ep.start + 1], 10.0);
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            AttackVector::FalseDataInjection { bias: 1.1 }.name(),
            "false_data_injection"
        );
        assert_eq!(
            AttackVector::TemporalDisruption.name(),
            "temporal_disruption"
        );
        assert_eq!(AttackVector::Ramp { peak: 2.0 }.name(), "ramp");
        assert_eq!(AttackVector::Pulse { magnitude: 2.0 }.name(), "pulse");
    }

    #[test]
    fn deterministic_per_seed() {
        let clean = ramp_series(300);
        let v = AttackVector::Ramp { peak: 2.0 };
        assert_eq!(
            inject_vector(&clean, v, 0.05, 1),
            inject_vector(&clean, v, 0.05, 1)
        );
    }

    #[test]
    fn fraction_respected_roughly() {
        let clean = vec![1.0; 4000];
        let out = inject_vector(&clean, AttackVector::TemporalDisruption, 0.05, 9);
        let frac = out.attacked_fraction();
        assert!((0.03..=0.08).contains(&frac), "fraction {frac}");
    }
}
