//! Dataset assembly.

use crate::profile::{Zone, ZoneProfile};
use crate::weather::{generate_weather, WeatherPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_standard_normal;
use serde::{Deserialize, Serialize};

/// The paper's per-zone series length (Sep 2022 – Feb 2023, hourly).
pub const PAPER_TIMESTAMPS: usize = 4344;

/// Configuration for [`ShenzhenGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of hourly timestamps per zone (paper: 4,344).
    pub timestamps: usize,
    /// Master seed; per-zone streams are derived deterministically.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            timestamps: PAPER_TIMESTAMPS,
            seed: 2022,
        }
    }
}

impl DatasetConfig {
    /// A reduced-size configuration for fast tests/benches (`n` hours).
    pub fn small(n: usize, seed: u64) -> Self {
        Self {
            timestamps: n,
            seed,
        }
    }
}

/// One federated client's local dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientData {
    /// Which traffic zone this client serves.
    pub zone: Zone,
    /// Hourly charging volume (never negative).
    pub demand: Vec<f64>,
    /// Contextual weather (unused by the models, as in the paper).
    pub weather: Vec<WeatherPoint>,
}

impl ClientData {
    /// The paper's client name (`"Client 1"` …).
    pub fn client_name(&self) -> String {
        format!("Client {}", self.zone.client_index())
    }
}

/// Generates the synthetic three-zone dataset.
///
/// # Examples
///
/// ```
/// use evfad_data::{DatasetConfig, ShenzhenGenerator};
///
/// let small = ShenzhenGenerator::new(DatasetConfig::small(500, 1)).generate_all();
/// assert_eq!(small[0].demand.len(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct ShenzhenGenerator {
    config: DatasetConfig,
}

impl ShenzhenGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: DatasetConfig) -> Self {
        Self { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Generates the demand series and weather for one zone.
    pub fn generate_zone(&self, zone: Zone) -> ClientData {
        self.generate_with_profile(zone, &ZoneProfile::shenzhen(zone))
    }

    /// Generates a zone's data from a custom profile (used by ablations).
    pub fn generate_with_profile(&self, zone: Zone, profile: &ZoneProfile) -> ClientData {
        let n = self.config.timestamps;
        let zone_seed = self
            .config
            .seed
            .wrapping_mul(0x0100_0000_01B3)
            .wrapping_add(zone.client_index() as u64);
        let mut rng = StdRng::seed_from_u64(zone_seed);
        let mut ar_noise = 0.0f64;
        let mut demand = Vec::with_capacity(n);
        for t in 0..n {
            let det = profile.deterministic(t, n);
            let innovation = sample_standard_normal(&mut rng) * profile.noise_level * profile.base;
            ar_noise = profile.noise_persistence * ar_noise + innovation;
            let mut v = det + ar_noise;
            if rng.gen::<f64>() < profile.natural_spike_rate {
                // Natural demand burst (fleet arrival, event traffic).
                v += profile.base * profile.natural_spike_scale * rng.gen_range(0.5..1.5);
            }
            demand.push(v.max(0.0));
        }
        ClientData {
            zone,
            demand,
            weather: generate_weather(n, zone_seed ^ 0xABCD),
        }
    }

    /// Generates all three clients in paper order (102, 105, 108).
    pub fn generate_all(&self) -> Vec<ClientData> {
        Zone::ALL.iter().map(|&z| self.generate_zone(z)).collect()
    }
}

/// Minimal inlined standard-normal sampler (Box–Muller) so the crate does
/// not need `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// Samples one standard normal value.
    pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        #[test]
        fn moments_are_plausible() {
            let mut rng = StdRng::seed_from_u64(1);
            let n = 20_000;
            let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            assert!(mean.abs() < 0.03, "mean={mean}");
            assert!((var - 1.0).abs() < 0.05, "var={var}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evfad_tensor_free_stats::{autocorrelation_at_lag, mean};

    /// Tiny local stats helpers (avoids a dev-dependency cycle).
    mod evfad_tensor_free_stats {
        pub fn mean(v: &[f64]) -> f64 {
            v.iter().sum::<f64>() / v.len() as f64
        }

        pub fn autocorrelation_at_lag(v: &[f64], lag: usize) -> f64 {
            let m = mean(v);
            let var: f64 = v.iter().map(|x| (x - m) * (x - m)).sum();
            if var == 0.0 {
                return 0.0;
            }
            let cov: f64 = v[..v.len() - lag]
                .iter()
                .zip(&v[lag..])
                .map(|(a, b)| (a - m) * (b - m))
                .sum();
            cov / var
        }
    }

    #[test]
    fn default_matches_paper_dimensions() {
        let data = ShenzhenGenerator::new(DatasetConfig::default()).generate_all();
        assert_eq!(data.len(), 3);
        for (i, client) in data.iter().enumerate() {
            assert_eq!(client.demand.len(), PAPER_TIMESTAMPS);
            assert_eq!(client.weather.len(), PAPER_TIMESTAMPS);
            assert_eq!(client.zone.client_index(), i + 1);
        }
    }

    #[test]
    fn demand_is_nonnegative_and_finite() {
        let data = ShenzhenGenerator::new(DatasetConfig::small(2000, 3)).generate_all();
        for client in &data {
            assert!(client.demand.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ShenzhenGenerator::new(DatasetConfig::small(300, 9)).generate_all();
        let b = ShenzhenGenerator::new(DatasetConfig::small(300, 9)).generate_all();
        assert_eq!(a, b);
        let c = ShenzhenGenerator::new(DatasetConfig::small(300, 10)).generate_all();
        assert_ne!(a, c);
    }

    #[test]
    fn strong_daily_autocorrelation() {
        let client =
            ShenzhenGenerator::new(DatasetConfig::small(24 * 60, 4)).generate_zone(Zone::Z102);
        let ac24 = autocorrelation_at_lag(&client.demand, 24);
        assert!(ac24 > 0.5, "24h autocorrelation too weak: {ac24}");
    }

    #[test]
    fn zones_have_distinct_means() {
        let data = ShenzhenGenerator::new(DatasetConfig::small(24 * 30, 5)).generate_all();
        let means: Vec<f64> = data.iter().map(|c| mean(&c.demand)).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(
                    (means[i] - means[j]).abs() > 1.0,
                    "zones {i} and {j} too similar: {means:?}"
                );
            }
        }
    }

    #[test]
    fn zone_108_has_highest_relative_roughness() {
        // High-frequency residual v[t] - (v[t-1] + v[t+1]) / 2 cancels the
        // smooth daily pattern and isolates noise + natural spikes, which
        // is what makes zone 108 hard for the anomaly detector.
        let data = ShenzhenGenerator::new(DatasetConfig::small(24 * 60, 6)).generate_all();
        let roughness = |v: &[f64]| {
            let m = mean(v);
            let acc: f64 = v
                .windows(3)
                .map(|w| (w[1] - (w[0] + w[2]) / 2.0).abs())
                .sum();
            acc / (v.len() - 2) as f64 / m
        };
        let r: Vec<f64> = data.iter().map(|c| roughness(&c.demand)).collect();
        assert!(r[2] > r[0] && r[2] > r[1], "{r:?}");
    }

    #[test]
    fn client_names_follow_paper() {
        let data = ShenzhenGenerator::new(DatasetConfig::small(50, 1)).generate_all();
        assert_eq!(data[0].client_name(), "Client 1");
        assert_eq!(data[2].client_name(), "Client 3");
    }

    #[test]
    fn custom_profile_is_respected() {
        let gen = ShenzhenGenerator::new(DatasetConfig::small(24 * 14, 2));
        let mut profile = ZoneProfile::shenzhen(Zone::Z102);
        profile.base = 400.0;
        let big = gen.generate_with_profile(Zone::Z102, &profile);
        let normal = gen.generate_zone(Zone::Z102);
        assert!(mean(&big.demand) > 5.0 * mean(&normal.demand));
    }
}
