//! Synthetic Shenzhen-style EV-charging demand data.
//!
//! The paper evaluates on a proprietary dataset of Shenzhen charging-station
//! volumes (September 2022 – February 2023, 1-hour resolution, traffic zones
//! 102 / 105 / 108, 4,344 timestamps per zone, plus weather context). That
//! dataset is not public, so this crate generates a synthetic equivalent
//! that preserves the three statistical properties the paper's results rest
//! on (see `DESIGN.md` §3):
//!
//! 1. **Daily periodicity** — a double-peaked (morning/evening) demand
//!    profile learnable by a 24-step LSTM, with weekday/weekend modulation;
//! 2. **Spatial heterogeneity** — zones differ in amplitude, peak hours and
//!    weekend behaviour, which drives the paper's federated-vs-centralized
//!    gap;
//! 3. **Zone-specific noisiness** — zone 108 has heavier-tailed noise and
//!    natural demand spikes, reproducing its low anomaly-detection recall
//!    (Table II).
//!
//! # Examples
//!
//! ```
//! use evfad_data::{DatasetConfig, ShenzhenGenerator, Zone};
//!
//! let dataset = ShenzhenGenerator::new(DatasetConfig::default()).generate_all();
//! assert_eq!(dataset.len(), 3);
//! let client1 = &dataset[0];
//! assert_eq!(client1.zone, Zone::Z102);
//! assert_eq!(client1.demand.len(), 4344);
//! assert!(client1.demand.iter().all(|&v| v >= 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
pub mod csv;
mod generator;
mod profile;
mod weather;

pub use calendar::{day_of_week, hour_of_day, is_weekend, HOURS_PER_DAY, HOURS_PER_WEEK};
pub use generator::{ClientData, DatasetConfig, ShenzhenGenerator, PAPER_TIMESTAMPS};
pub use profile::{Zone, ZoneProfile};
pub use weather::{generate_weather, WeatherPoint};
