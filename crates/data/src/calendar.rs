//! Hour/day bookkeeping for the hourly series.
//!
//! Timestamp `0` is defined as 00:00 on a Thursday (1 September 2022, the
//! first day of the paper's collection window).

/// Hours in one day.
pub const HOURS_PER_DAY: usize = 24;

/// Hours in one week.
pub const HOURS_PER_WEEK: usize = 7 * HOURS_PER_DAY;

/// Day-of-week index of timestamp 0 (Thursday; Monday = 0).
const FIRST_DAY_OF_WEEK: usize = 3;

/// Hour of day (0–23) for hourly timestamp `t`.
///
/// # Examples
///
/// ```
/// assert_eq!(evfad_data::hour_of_day(0), 0);
/// assert_eq!(evfad_data::hour_of_day(25), 1);
/// ```
pub fn hour_of_day(t: usize) -> usize {
    t % HOURS_PER_DAY
}

/// Day of week (Monday = 0 … Sunday = 6) for hourly timestamp `t`.
pub fn day_of_week(t: usize) -> usize {
    (t / HOURS_PER_DAY + FIRST_DAY_OF_WEEK) % 7
}

/// Whether timestamp `t` falls on a Saturday or Sunday.
pub fn is_weekend(t: usize) -> bool {
    day_of_week(t) >= 5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_cycles_daily() {
        assert_eq!(hour_of_day(0), 0);
        assert_eq!(hour_of_day(23), 23);
        assert_eq!(hour_of_day(24), 0);
        assert_eq!(hour_of_day(24 * 100 + 7), 7);
    }

    #[test]
    fn first_timestamp_is_thursday() {
        assert_eq!(day_of_week(0), 3);
    }

    #[test]
    fn weekend_detection() {
        // Thursday (day 0 of series) .. Friday .. Saturday.
        assert!(!is_weekend(0));
        assert!(!is_weekend(24));
        assert!(is_weekend(48));
        assert!(is_weekend(72));
        assert!(!is_weekend(96)); // Monday
    }

    #[test]
    fn week_wraps_after_seven_days() {
        assert_eq!(day_of_week(0), day_of_week(HOURS_PER_WEEK));
    }
}
