//! Per-zone demand profiles.

use serde::{Deserialize, Serialize};

/// The three Shenzhen traffic zones studied in the paper.
///
/// Zone 102 is Client 1, 105 is Client 2, and 108 is Client 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// Traffic zone 102 (Client 1) — dense commercial district.
    Z102,
    /// Traffic zone 105 (Client 2) — mixed residential/office.
    Z105,
    /// Traffic zone 108 (Client 3) — logistics corridor with bursty demand.
    Z108,
}

impl Zone {
    /// All three zones in client order.
    pub const ALL: [Zone; 3] = [Zone::Z102, Zone::Z105, Zone::Z108];

    /// The paper's zone label (`"102"` / `"105"` / `"108"`).
    pub fn label(self) -> &'static str {
        match self {
            Zone::Z102 => "102",
            Zone::Z105 => "105",
            Zone::Z108 => "108",
        }
    }

    /// One-based client index (`Client 1` is zone 102).
    pub fn client_index(self) -> usize {
        match self {
            Zone::Z102 => 1,
            Zone::Z105 => 2,
            Zone::Z108 => 3,
        }
    }
}

impl std::fmt::Display for Zone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone {}", self.label())
    }
}

/// Shape parameters of a zone's demand process.
///
/// Demand at hour `t` is modelled as
///
/// ```text
/// base * trend(t) * daily(hour, weekend) + AR(1)-noise + natural spikes
/// ```
///
/// where `daily` is a double-Gaussian bump profile over the hour of day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneProfile {
    /// Mean demand level (charging volume units).
    pub base: f64,
    /// Morning peak hour (0–23).
    pub morning_peak_hour: f64,
    /// Evening peak hour (0–23).
    pub evening_peak_hour: f64,
    /// Morning peak amplitude relative to `base`.
    pub morning_amplitude: f64,
    /// Evening peak amplitude relative to `base`.
    pub evening_amplitude: f64,
    /// Peak width in hours (Gaussian sigma).
    pub peak_width: f64,
    /// Multiplier applied to peaks at weekends.
    pub weekend_factor: f64,
    /// Linear demand growth over the whole window (e.g. `0.1` = +10 %).
    pub trend: f64,
    /// Standard deviation of the AR(1) noise, relative to `base`.
    pub noise_level: f64,
    /// AR(1) autocorrelation of the noise in `[0, 1)`.
    pub noise_persistence: f64,
    /// Per-hour probability of a natural (non-attack) demand spike.
    pub natural_spike_rate: f64,
    /// Mean magnitude of natural spikes, relative to `base`.
    pub natural_spike_scale: f64,
}

impl ZoneProfile {
    /// The calibrated profile for one of the paper's zones.
    ///
    /// Zone 108 is given an elevated natural-spike rate and noise level so
    /// that its charging pattern "may be more difficult to distinguish from
    /// attack signatures" (paper §III-C).
    pub fn shenzhen(zone: Zone) -> Self {
        match zone {
            // The cross-zone conflicts that matter for the federated-vs-
            // centralized comparison are the ones a pooled model cannot
            // resolve from a 24-hour window alone: weekend behaviour (the
            // day of week is invisible inside one window) and noise
            // persistence (how a residual continues). The three zones
            // disagree strongly on both, as real commercial / residential /
            // logistics districts do.
            // The daily *shapes* are deliberately similar across zones
            // (same morning-evening peak spacing and widths): after
            // per-client MinMax scaling a pooled model cannot tell which
            // zone a window came from, so the conflicts below are
            // irresolvable for it while a local model implicitly conditions
            // on its zone. Phases differ, but a relative 24 h window of a
            // periodic signal carries no absolute anchor.
            Zone::Z102 => Self {
                base: 40.0,
                morning_peak_hour: 9.0,
                evening_peak_hour: 19.0,
                morning_amplitude: 0.9,
                evening_amplitude: 1.3,
                peak_width: 2.8,
                weekend_factor: 0.5,
                trend: 0.12,
                noise_level: 0.10,
                noise_persistence: 0.25,
                natural_spike_rate: 0.002,
                natural_spike_scale: 0.35,
            },
            Zone::Z105 => Self {
                base: 31.0,
                morning_peak_hour: 7.5,
                evening_peak_hour: 17.5,
                morning_amplitude: 0.95,
                evening_amplitude: 1.25,
                peak_width: 2.8,
                weekend_factor: 1.55,
                trend: 0.08,
                noise_level: 0.11,
                noise_persistence: 0.85,
                natural_spike_rate: 0.0015,
                natural_spike_scale: 0.3,
            },
            Zone::Z108 => Self {
                base: 26.0,
                morning_peak_hour: 11.0,
                evening_peak_hour: 21.0,
                morning_amplitude: 0.85,
                evening_amplitude: 1.2,
                peak_width: 2.8,
                weekend_factor: 0.95,
                trend: 0.05,
                noise_level: 0.13,
                noise_persistence: 0.55,
                natural_spike_rate: 0.022,
                natural_spike_scale: 1.3,
            },
        }
    }

    /// Deterministic (noise-free) demand component at timestamp `t`.
    pub fn deterministic(&self, t: usize, horizon: usize) -> f64 {
        let hour = crate::calendar::hour_of_day(t) as f64;
        let weekend = crate::calendar::is_weekend(t);
        let trend = 1.0 + self.trend * (t as f64 / horizon.max(1) as f64);
        let bump = |peak: f64, amp: f64| {
            // Wrap-around distance on the 24h circle.
            let d = (hour - peak).abs().min(24.0 - (hour - peak).abs());
            amp * (-d * d / (2.0 * self.peak_width * self.peak_width)).exp()
        };
        let mut daily = 0.35
            + bump(self.morning_peak_hour, self.morning_amplitude)
            + bump(self.evening_peak_hour, self.evening_amplitude);
        if weekend {
            daily = 0.35 + (daily - 0.35) * self.weekend_factor;
        }
        self.base * trend * daily
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_indices() {
        assert_eq!(Zone::Z102.label(), "102");
        assert_eq!(Zone::Z105.client_index(), 2);
        assert_eq!(Zone::ALL.len(), 3);
        assert_eq!(format!("{}", Zone::Z108), "zone 108");
    }

    #[test]
    fn deterministic_peaks_near_configured_hours() {
        let p = ZoneProfile::shenzhen(Zone::Z102);
        // Evening peak (19h, weekday) beats 3am by a wide margin.
        let start_of_week_day = 96; // Monday
        let night = p.deterministic(start_of_week_day + 3, 4344);
        let evening = p.deterministic(start_of_week_day + 19, 4344);
        assert!(evening > night * 1.8, "evening={evening} night={night}");
    }

    #[test]
    fn weekend_suppresses_commercial_zone() {
        let p = ZoneProfile::shenzhen(Zone::Z102);
        let weekday_evening = p.deterministic(96 + 19, 4344); // Monday 19h
        let weekend_evening = p.deterministic(48 + 19, 4344); // Saturday 19h
        assert!(weekend_evening < weekday_evening);
    }

    #[test]
    fn weekend_boosts_residential_zone() {
        let p = ZoneProfile::shenzhen(Zone::Z105);
        let weekday = p.deterministic(96 + 21, 4344);
        let weekend = p.deterministic(48 + 21, 4344);
        assert!(weekend > weekday);
    }

    #[test]
    fn trend_grows_demand() {
        let p = ZoneProfile::shenzhen(Zone::Z102);
        // Same hour/day-of-week, 25 weeks apart.
        let early = p.deterministic(96 + 12, 4344);
        let late = p.deterministic(96 + 12 + 24 * 7 * 25, 4344);
        assert!(late > early);
    }

    #[test]
    fn zones_are_heterogeneous() {
        // At a fixed hour the three zones differ materially.
        let t = 96 + 9;
        let vals: Vec<f64> = Zone::ALL
            .iter()
            .map(|&z| ZoneProfile::shenzhen(z).deterministic(t, 4344))
            .collect();
        assert!((vals[0] - vals[1]).abs() > 1.0);
        assert!((vals[1] - vals[2]).abs() > 1.0);
    }

    #[test]
    fn zone_108_is_noisiest() {
        let p102 = ZoneProfile::shenzhen(Zone::Z102);
        let p108 = ZoneProfile::shenzhen(Zone::Z108);
        assert!(p108.noise_level > p102.noise_level);
        assert!(p108.natural_spike_rate > 4.0 * p102.natural_spike_rate);
    }
}
