//! Contextual weather channel.
//!
//! The paper's dataset includes meteorological observations that are carried
//! as context but "not directly incorporated into the forecasting models"
//! (§II-A). We generate an equivalent channel so the dataset has the same
//! shape and downstream users can experiment with weather-aware extensions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hourly weather observation for a zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherPoint {
    /// Air temperature in °C.
    pub temperature_c: f64,
    /// Relative humidity in percent.
    pub humidity_pct: f64,
    /// Whether precipitation occurred during the hour.
    pub raining: bool,
}

/// Generates `timestamps` hourly weather points for a subtropical autumn →
/// winter window (Shenzhen, September–February): a slow seasonal cooling
/// trend plus a diurnal temperature cycle and autocorrelated rain spells.
///
/// # Examples
///
/// ```
/// let w = evfad_data::generate_weather(1000, 7);
/// assert_eq!(w.len(), 1000);
/// assert!(w.iter().all(|p| p.temperature_c > -5.0 && p.temperature_c < 45.0));
/// ```
pub fn generate_weather(timestamps: usize, seed: u64) -> Vec<WeatherPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57EA_7E44);
    let mut raining = false;
    let mut temp_noise = 0.0f64;
    (0..timestamps)
        .map(|t| {
            let season = t as f64 / timestamps.max(1) as f64;
            // ~29°C September mean cooling to ~16°C February mean.
            let seasonal = 29.0 - 13.0 * season;
            let hour = crate::calendar::hour_of_day(t) as f64;
            let diurnal = 3.5 * ((hour - 14.0) * std::f64::consts::PI / 12.0).cos();
            temp_noise = 0.9 * temp_noise + rng.gen_range(-0.6..0.6);
            // Rain spells persist: 3% start rate, 70% continuation.
            raining = if raining {
                rng.gen::<f64>() < 0.7
            } else {
                rng.gen::<f64>() < 0.03
            };
            let rain_boost = if raining { 25.0 } else { 0.0 };
            let humidity = (62.0_f64 + rain_boost + rng.gen_range(-8.0..8.0)).clamp(20.0, 100.0);
            WeatherPoint {
                temperature_c: seasonal + diurnal + temp_noise - if raining { 1.5 } else { 0.0 },
                humidity_pct: humidity,
                raining,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(generate_weather(100, 5), generate_weather(100, 5));
        assert_ne!(generate_weather(100, 5), generate_weather(100, 6));
    }

    #[test]
    fn cools_over_the_window() {
        let w = generate_weather(4344, 1);
        let first_week: f64 = w[..168].iter().map(|p| p.temperature_c).sum::<f64>() / 168.0;
        let last_week: f64 = w[w.len() - 168..]
            .iter()
            .map(|p| p.temperature_c)
            .sum::<f64>()
            / 168.0;
        assert!(first_week > last_week + 5.0);
    }

    #[test]
    fn afternoon_warmer_than_predawn() {
        let w = generate_weather(24 * 30, 2);
        let mut pre_dawn = 0.0;
        let mut afternoon = 0.0;
        let mut days = 0.0;
        for d in 0..30 {
            pre_dawn += w[d * 24 + 4].temperature_c;
            afternoon += w[d * 24 + 14].temperature_c;
            days += 1.0;
        }
        assert!(afternoon / days > pre_dawn / days + 3.0);
    }

    #[test]
    fn rain_raises_humidity() {
        let w = generate_weather(4344, 3);
        let (mut wet, mut nw, mut dry, mut nd) = (0.0, 0.0, 0.0, 0.0);
        for p in &w {
            if p.raining {
                wet += p.humidity_pct;
                nw += 1.0;
            } else {
                dry += p.humidity_pct;
                nd += 1.0;
            }
        }
        assert!(nw > 0.0 && nd > 0.0);
        assert!(wet / nw > dry / nd + 10.0);
    }

    #[test]
    fn humidity_stays_in_bounds() {
        let w = generate_weather(2000, 4);
        assert!(w.iter().all(|p| (20.0..=100.0).contains(&p.humidity_pct)));
    }
}
