//! CSV import/export for client datasets.
//!
//! The paper's pipeline starts from CSV exports of the Shenzhen platform.
//! These helpers let users round-trip [`ClientData`] through the same
//! simple format (`timestamp,demand,temperature_c,humidity_pct,raining`),
//! with no external CSV dependency.

use crate::generator::ClientData;
use crate::profile::Zone;
use crate::weather::WeatherPoint;
use std::fmt::Write as _;

/// Error produced when parsing a dataset CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// The header row is missing or malformed.
    BadHeader(String),
    /// A data row has the wrong number of fields.
    BadRowShape {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        fields: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "bad CSV header: {h:?}"),
            CsvError::BadRowShape { line, fields } => {
                write!(f, "line {line}: expected 5 fields, found {fields}")
            }
            CsvError::BadField { line, column } => {
                write!(f, "line {line}: could not parse column {column}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

const HEADER: &str = "timestamp,demand,temperature_c,humidity_pct,raining";

/// Serialises a client's dataset to CSV.
///
/// # Examples
///
/// ```
/// use evfad_data::{csv, DatasetConfig, ShenzhenGenerator, Zone};
///
/// let client = ShenzhenGenerator::new(DatasetConfig::small(48, 1)).generate_zone(Zone::Z102);
/// let text = csv::to_csv(&client);
/// let back = csv::from_csv(&text, Zone::Z102)?;
/// assert_eq!(back.demand.len(), 48);
/// # Ok::<(), evfad_data::csv::CsvError>(())
/// ```
pub fn to_csv(client: &ClientData) -> String {
    let mut out = String::with_capacity(client.demand.len() * 48);
    out.push_str(HEADER);
    out.push('\n');
    for (t, (demand, weather)) in client.demand.iter().zip(&client.weather).enumerate() {
        let _ = writeln!(
            out,
            "{t},{demand},{},{},{}",
            weather.temperature_c,
            weather.humidity_pct,
            if weather.raining { 1 } else { 0 }
        );
    }
    out
}

/// Parses a dataset CSV produced by [`to_csv`] (or hand-authored in the
/// same format). Rows must be in timestamp order starting at zero.
///
/// # Errors
///
/// Returns [`CsvError`] on a malformed header, row, or field.
pub fn from_csv(text: &str, zone: Zone) -> Result<ClientData, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CsvError::BadHeader("<empty file>".into()))?;
    if header.trim() != HEADER {
        return Err(CsvError::BadHeader(header.to_string()));
    }
    let mut demand = Vec::new();
    let mut weather = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(CsvError::BadRowShape {
                line: line_no,
                fields: fields.len(),
            });
        }
        let parse = |s: &str, column: &'static str| -> Result<f64, CsvError> {
            s.trim().parse().map_err(|_| CsvError::BadField {
                line: line_no,
                column,
            })
        };
        let _t = parse(fields[0], "timestamp")?;
        demand.push(parse(fields[1], "demand")?);
        weather.push(WeatherPoint {
            temperature_c: parse(fields[2], "temperature_c")?,
            humidity_pct: parse(fields[3], "humidity_pct")?,
            raining: fields[4].trim() == "1" || fields[4].trim().eq_ignore_ascii_case("true"),
        });
    }
    Ok(ClientData {
        zone,
        demand,
        weather,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DatasetConfig, ShenzhenGenerator};

    fn sample_client() -> ClientData {
        ShenzhenGenerator::new(DatasetConfig::small(30, 7)).generate_zone(Zone::Z105)
    }

    #[test]
    fn round_trip_preserves_values() {
        let client = sample_client();
        let text = to_csv(&client);
        let back = from_csv(&text, Zone::Z105).unwrap();
        assert_eq!(back.demand.len(), client.demand.len());
        for (a, b) in client.demand.iter().zip(&back.demand) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in client.weather.iter().zip(&back.weather) {
            assert_eq!(a.raining, b.raining);
            assert!((a.temperature_c - b.temperature_c).abs() < 1e-12);
        }
    }

    #[test]
    fn header_is_first_line() {
        let text = to_csv(&sample_client());
        assert!(text.starts_with("timestamp,demand,"));
    }

    #[test]
    fn rejects_wrong_header() {
        let err = from_csv("a,b,c\n1,2,3", Zone::Z102).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader(_)));
    }

    #[test]
    fn rejects_short_row() {
        let text = format!("{HEADER}\n0,1.0,20.0\n");
        let err = from_csv(&text, Zone::Z102).unwrap_err();
        assert_eq!(err, CsvError::BadRowShape { line: 2, fields: 3 });
    }

    #[test]
    fn rejects_bad_number() {
        let text = format!("{HEADER}\n0,notanumber,20.0,50.0,0\n");
        let err = from_csv(&text, Zone::Z102).unwrap_err();
        assert!(matches!(
            err,
            CsvError::BadField {
                line: 2,
                column: "demand"
            }
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let text = format!("{HEADER}\n0,1.5,20.0,50.0,1\n\n1,2.5,21.0,55.0,0\n");
        let data = from_csv(&text, Zone::Z108).unwrap();
        assert_eq!(data.demand, vec![1.5, 2.5]);
        assert!(data.weather[0].raining);
        assert!(!data.weather[1].raining);
    }

    #[test]
    fn raining_accepts_true_literal() {
        let text = format!("{HEADER}\n0,1.0,20.0,50.0,TRUE\n");
        let data = from_csv(&text, Zone::Z102).unwrap();
        assert!(data.weather[0].raining);
    }

    #[test]
    fn error_displays() {
        assert!(CsvError::BadHeader("x".into()).to_string().contains("x"));
        assert!(CsvError::BadRowShape { line: 3, fields: 2 }
            .to_string()
            .contains('3'));
        assert!(CsvError::BadField {
            line: 4,
            column: "demand"
        }
        .to_string()
        .contains("demand"));
    }
}
