//! `evfad-core` — the facade crate for the EV-charging federated
//! anomaly-detection framework.
//!
//! This workspace is a from-scratch Rust reproduction of *"Federated
//! Anomaly Detection and Mitigation for EV Charging Forecasting Under
//! Cyberattacks"*: a federated LSTM demand forecaster with an integrated
//! LSTM-autoencoder anomaly filter, evaluated under simulated DDoS
//! data-integrity attacks.
//!
//! Most users want one of two entry points:
//!
//! * [`Framework`] — the high-level API: configure once, then run
//!   detection/mitigation and federated forecasting over the bundled
//!   synthetic Shenzhen dataset (or your own series);
//! * [`forecast::run_study`] — the paper's full four-scenario evaluation,
//!   producing a [`forecast::StudyReport`] from which every table and
//!   figure is printed.
//!
//! The substrates are re-exported as modules ([`nn`], [`tensor`],
//! [`timeseries`], [`data`], [`attack`], [`anomaly`], [`federated`],
//! [`forecast`]) for direct use.
//!
//! # Examples
//!
//! End-to-end quickstart on a small synthetic dataset:
//!
//! ```no_run
//! use evfad_core::{Framework, forecast::Scale};
//!
//! let framework = Framework::at_scale(Scale::Small, 42);
//! let report = framework.run_study()?;
//! println!("{}", report.table1());
//! println!("{}", report.headline_text());
//! # Ok::<(), evfad_core::forecast::ForecastError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Dense linear algebra substrate.
pub use evfad_tensor as tensor;

/// Neural-network substrate (LSTM, Dense, Adam, `Sequential`).
pub use evfad_nn as nn;

/// Time-series toolkit (scaling, windowing, imputation, metrics).
pub use evfad_timeseries as timeseries;

/// Synthetic Shenzhen EV-charging dataset generator.
pub use evfad_data as data;

/// DDoS traffic model and attack injection.
pub use evfad_attack as attack;

/// LSTM-autoencoder anomaly detection and mitigation.
pub use evfad_anomaly as anomaly;

/// Federated learning stack (FedAvg, robust aggregation, DP).
pub use evfad_federated as federated;

/// Forecasting models and the paper's experiment runner.
pub use evfad_forecast as forecast;

use evfad_forecast::{run_study, ForecastError, Scale, StudyConfig, StudyReport};

/// High-level entry point bundling the full pipeline behind one type.
///
/// Wraps a [`StudyConfig`]; construct via [`Framework::at_scale`] /
/// [`Framework::paper`] or from a custom config with [`Framework::new`],
/// then call [`Framework::run_study`].
#[derive(Debug, Clone)]
pub struct Framework {
    config: StudyConfig,
}

impl Framework {
    /// Wraps an explicit study configuration.
    pub fn new(config: StudyConfig) -> Self {
        Self { config }
    }

    /// A preset configuration at the given scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        Self::new(StudyConfig::at_scale(scale, seed))
    }

    /// The paper's full protocol (4,344 points, LSTM(50), 5 × 10 epochs).
    pub fn paper(seed: u64) -> Self {
        Self::new(StudyConfig::paper(seed))
    }

    /// Borrow of the wrapped configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Mutable borrow of the wrapped configuration (for fine-tuning).
    pub fn config_mut(&mut self) -> &mut StudyConfig {
        &mut self.config
    }

    /// Runs the paper's complete four-scenario study.
    ///
    /// # Errors
    ///
    /// Propagates any preparation, filtering, or training failure from the
    /// underlying pipeline.
    pub fn run_study(&self) -> Result<StudyReport, ForecastError> {
        run_study(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_exposes_config() {
        let mut f = Framework::at_scale(Scale::Small, 7);
        assert_eq!(f.config().seed, 7);
        f.config_mut().seed = 8;
        assert_eq!(f.config().seed, 8);
    }

    #[test]
    fn paper_preset_is_paper_scale() {
        let f = Framework::paper(1);
        assert_eq!(f.config().dataset.timestamps, 4344);
        assert_eq!(f.config().lstm_units, 50);
    }

    #[test]
    fn reexports_are_wired() {
        // Spot-check that the facade modules expose the expected items.
        let _ = tensor::Matrix::zeros(1, 1);
        let _ = nn::Activation::Relu;
        let _ = timeseries::MinMaxScaler::fit(&[0.0, 1.0]).unwrap();
        let _ = data::Zone::Z102;
        let _ = attack::DdosConfig::default();
        let _ = anomaly::ThresholdRule::paper();
        let _ = federated::Aggregator::FedAvg;
        let _ = forecast::Scale::Small;
    }

    #[test]
    fn tiny_study_runs_through_facade() {
        let mut f = Framework::at_scale(Scale::Small, 3);
        let cfg = f.config_mut();
        cfg.dataset.timestamps = 360;
        cfg.lstm_units = 6;
        cfg.rounds = 1;
        cfg.epochs_per_round = 1;
        cfg.filter.encoder_units = (6, 3);
        cfg.filter.epochs = 2;
        cfg.filter.train_stride = 4;
        let report = f.run_study().expect("study");
        assert_eq!(report.scenarios.len(), 4);
    }
}
