//! Property-based tests for the time-series toolkit.

use evfad_timeseries::{impute, metrics, split, windows, MinMaxScaler, TimeSeriesError};
use proptest::prelude::*;

fn varied_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 2..200).prop_filter("needs range", |v| {
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        max - min > 1e-6
    })
}

proptest! {
    /// transform maps the fitted data into [0, 1] and inverse restores it.
    #[test]
    fn scaler_round_trip(v in varied_series()) {
        let s = MinMaxScaler::fit(&v).unwrap();
        let t = s.transform(&v);
        prop_assert!(t.iter().all(|x| (-1e-12..=1.0 + 1e-12).contains(x)));
        let back = s.inverse_transform(&t);
        for (a, b) in v.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// A tight round-trip bound: `inverse_transform ∘ transform` restores
    /// every point to within 1e-12 relative error. The arithmetic is one
    /// subtraction, one division, one multiplication, one addition — the
    /// error budget is a handful of ulps, far below 1e-12.
    #[test]
    fn scaler_round_trip_is_tight(v in varied_series()) {
        let s = MinMaxScaler::fit(&v).unwrap();
        let back = s.inverse_transform(&s.transform(&v));
        for (a, b) in v.iter().zip(back.iter()) {
            prop_assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "round-trip drift: {a} -> {b}"
            );
        }
    }

    /// A constant (zero-range) series must be rejected cleanly — a
    /// descriptive error, never a panic, never NaN leaking out of a
    /// degenerate 0/0 scale.
    #[test]
    fn constant_series_errors_instead_of_nan(value in -1e6f64..1e6, len in 1usize..100) {
        let v = vec![value; len];
        match MinMaxScaler::fit(&v) {
            Err(TimeSeriesError::DegenerateRange { value: reported }) => {
                prop_assert!(reported.is_finite());
                prop_assert!((reported - value).abs() <= 1e-9 * value.abs().max(1.0));
            }
            other => prop_assert!(false, "expected DegenerateRange, got {other:?}"),
        }
    }

    /// The temporal split partitions the series without reordering.
    #[test]
    fn split_partitions(v in varied_series(), frac in 0.1f64..0.9) {
        let (train, test) = split::temporal(&v, frac).unwrap();
        prop_assert_eq!(train.len() + test.len(), v.len());
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
        let rejoined: Vec<f64> = train.iter().chain(test.iter()).copied().collect();
        prop_assert_eq!(rejoined, v);
    }

    /// Every sliding window is a verbatim slice of the source.
    #[test]
    fn windows_are_slices(v in prop::collection::vec(-10.0f64..10.0, 5..100), seq in 1usize..4) {
        for w in windows::sliding(&v, seq) {
            let start = w.target_index - seq;
            prop_assert_eq!(&w.input[..], &v[start..start + seq]);
            prop_assert_eq!(w.target, v[w.target_index]);
        }
    }

    /// Linear imputation never exceeds the range of its anchor points and
    /// leaves unmasked points untouched.
    #[test]
    fn linear_impute_bounded(
        v in prop::collection::vec(-100.0f64..100.0, 3..100),
        mask_seed in prop::collection::vec(0u8..10, 3..100),
    ) {
        let n = v.len().min(mask_seed.len());
        let v = &v[..n];
        let mask: Vec<bool> = mask_seed[..n].iter().map(|&m| m < 3).collect();
        if mask.iter().all(|&m| m) {
            return Ok(()); // fully masked: identity case tested elsewhere
        }
        let fixed = impute::linear(v, &mask).unwrap();
        let lo = v.iter().zip(&mask).filter(|(_, &m)| !m).map(|(x, _)| *x).fold(f64::INFINITY, f64::min);
        let hi = v.iter().zip(&mask).filter(|(_, &m)| !m).map(|(x, _)| *x).fold(f64::NEG_INFINITY, f64::max);
        for i in 0..n {
            if mask[i] {
                prop_assert!(fixed[i] >= lo - 1e-9 && fixed[i] <= hi + 1e-9);
            } else {
                prop_assert_eq!(fixed[i], v[i]);
            }
        }
    }

    /// R² of the actual series against itself is 1; MAE/RMSE are
    /// non-negative and RMSE >= MAE.
    #[test]
    fn metric_invariants(a in varied_series(), noise in prop::collection::vec(-5.0f64..5.0, 2..200)) {
        let n = a.len().min(noise.len());
        let a = &a[..n];
        let p: Vec<f64> = a.iter().zip(&noise[..n]).map(|(x, e)| x + e).collect();
        prop_assert!((metrics::r2(a, a).unwrap() - 1.0).abs() < 1e-12);
        let mae = metrics::mae(a, &p).unwrap();
        let rmse = metrics::rmse(a, &p).unwrap();
        prop_assert!(mae >= 0.0);
        prop_assert!(rmse >= mae - 1e-9);
        prop_assert!(metrics::r2(a, &p).unwrap() <= 1.0 + 1e-12);
    }

    /// sMAPE stays within [0, 200].
    #[test]
    fn smape_range(a in varied_series(), b in varied_series()) {
        let n = a.len().min(b.len());
        let s = metrics::smape(&a[..n], &b[..n]).unwrap();
        prop_assert!((0.0..=200.0 + 1e-9).contains(&s));
    }
}
