//! Time-series toolkit for the `evfad` workspace.
//!
//! Provides the data-preparation pipeline of the paper's §II-A plus the
//! evaluation metrics of §III-A:
//!
//! * [`MinMaxScaler`] — per-client 0..1 normalisation (sklearn semantics);
//! * [`windows`] — sliding-window sequence construction
//!   (`SEQUENCE_LENGTH = 24`);
//! * [`split`] — temporal 80/20 train/test split;
//! * [`impute`] — linear-interpolation (and alternative) gap filling used by
//!   the anomaly-mitigation stage;
//! * [`metrics`] — MAE, RMSE, R², MAPE, sMAPE.
//!
//! # Examples
//!
//! ```
//! use evfad_timeseries::{MinMaxScaler, split, windows};
//!
//! let series: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin() * 10.0 + 20.0).collect();
//! let (train, test) = split::temporal(&series, 0.8)?;
//! let scaler = MinMaxScaler::fit(train)?;
//! let train_scaled = scaler.transform(train);
//! let seqs = windows::sliding(&train_scaled, 24);
//! assert_eq!(seqs.len(), train_scaled.len() - 24);
//! assert_eq!(test.len(), 20);
//! # Ok::<(), evfad_timeseries::TimeSeriesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod error;
pub mod impute;
pub mod metrics;
mod scaler;
pub mod split;
pub mod windows;

pub use error::TimeSeriesError;
pub use scaler::MinMaxScaler;
pub use windows::{Window, WindowedSeries};
