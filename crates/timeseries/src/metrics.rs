//! Regression metrics (paper §III-A).

use crate::error::TimeSeriesError;
use serde::{Deserialize, Serialize};

/// The paper's forecast-quality triple plus two percentage metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionReport {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Mean absolute percentage error (undefined entries skipped).
    pub mape: f64,
    /// Symmetric MAPE in `[0, 200]`.
    pub smape: f64,
}

fn check(actual: &[f64], predicted: &[f64]) -> Result<(), TimeSeriesError> {
    if actual.is_empty() {
        return Err(TimeSeriesError::EmptySeries);
    }
    if actual.len() != predicted.len() {
        return Err(TimeSeriesError::LengthMismatch {
            series: actual.len(),
            other: predicted.len(),
        });
    }
    Ok(())
}

/// Mean absolute error.
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] / [`TimeSeriesError::LengthMismatch`].
///
/// # Examples
///
/// ```
/// let mae = evfad_timeseries::metrics::mae(&[1.0, 2.0], &[2.0, 0.0])?;
/// assert_eq!(mae, 1.5);
/// # Ok::<(), evfad_timeseries::TimeSeriesError>(())
/// ```
pub fn mae(actual: &[f64], predicted: &[f64]) -> Result<f64, TimeSeriesError> {
    check(actual, predicted)?;
    Ok(actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64)
}

/// Root mean squared error.
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] / [`TimeSeriesError::LengthMismatch`].
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Result<f64, TimeSeriesError> {
    check(actual, predicted)?;
    let mse = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64;
    Ok(mse.sqrt())
}

/// Coefficient of determination `R² = 1 - SS_res / SS_tot`.
///
/// Returns `0.0` when the actual series is constant and predictions are
/// imperfect (sklearn convention would be `-inf`-ish; `0` keeps downstream
/// aggregation finite, and the EV series is never constant in practice).
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] / [`TimeSeriesError::LengthMismatch`].
pub fn r2(actual: &[f64], predicted: &[f64]) -> Result<f64, TimeSeriesError> {
    check(actual, predicted)?;
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    if ss_tot == 0.0 {
        return Ok(if ss_res == 0.0 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Mean absolute percentage error (in percent). Points with
/// `actual == 0` are skipped; returns `0.0` if every point is skipped.
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] / [`TimeSeriesError::LengthMismatch`].
pub fn mape(actual: &[f64], predicted: &[f64]) -> Result<f64, TimeSeriesError> {
    check(actual, predicted)?;
    let mut acc = 0.0;
    let mut n = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if *a != 0.0 {
            acc += ((a - p) / a).abs();
            n += 1;
        }
    }
    Ok(if n == 0 { 0.0 } else { acc / n as f64 * 100.0 })
}

/// Symmetric MAPE (in percent, range `[0, 200]`). Points where both values
/// are zero contribute zero error.
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] / [`TimeSeriesError::LengthMismatch`].
pub fn smape(actual: &[f64], predicted: &[f64]) -> Result<f64, TimeSeriesError> {
    check(actual, predicted)?;
    let acc: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| {
            let denom = (a.abs() + p.abs()) / 2.0;
            if denom == 0.0 {
                0.0
            } else {
                (a - p).abs() / denom
            }
        })
        .sum();
    Ok(acc / actual.len() as f64 * 100.0)
}

/// Computes the full [`RegressionReport`] in one pass.
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] / [`TimeSeriesError::LengthMismatch`].
pub fn report(actual: &[f64], predicted: &[f64]) -> Result<RegressionReport, TimeSeriesError> {
    Ok(RegressionReport {
        mae: mae(actual, predicted)?,
        rmse: rmse(actual, predicted)?,
        r2: r2(actual, predicted)?,
        mape: mape(actual, predicted)?,
        smape: smape(actual, predicted)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let a = [1.0, 2.0, 3.0];
        let rep = report(&a, &a).unwrap();
        assert_eq!(rep.mae, 0.0);
        assert_eq!(rep.rmse, 0.0);
        assert_eq!(rep.r2, 1.0);
        assert_eq!(rep.mape, 0.0);
        assert_eq!(rep.smape, 0.0);
    }

    #[test]
    fn mean_prediction_has_zero_r2() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        assert!((r2(&a, &p).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn worse_than_mean_is_negative_r2() {
        let a = [1.0, 2.0, 3.0];
        let p = [3.0, 2.0, 1.0];
        assert!(r2(&a, &p).unwrap() < 0.0);
    }

    #[test]
    fn constant_actual_conventions() {
        let a = [5.0, 5.0];
        assert_eq!(r2(&a, &a).unwrap(), 1.0);
        assert_eq!(r2(&a, &[5.0, 6.0]).unwrap(), 0.0);
    }

    #[test]
    fn rmse_at_least_mae() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let p = [1.0, -1.0, 3.0, 0.5];
        assert!(rmse(&a, &p).unwrap() >= mae(&a, &p).unwrap());
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 10.0];
        let p = [5.0, 9.0];
        assert!((mape(&a, &p).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_all_zero_actuals_is_zero() {
        assert_eq!(mape(&[0.0, 0.0], &[1.0, 2.0]).unwrap(), 0.0);
    }

    #[test]
    fn smape_bounded_by_200() {
        let a = [1.0, -1.0];
        let p = [-1.0, 1.0];
        assert!((smape(&a, &p).unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_example() {
        let a = [3.0, -0.5, 2.0, 7.0];
        let p = [2.5, 0.0, 2.0, 8.0];
        assert!((mae(&a, &p).unwrap() - 0.5).abs() < 1e-12);
        // sklearn r2_score for this example is ~0.9486.
        assert!((r2(&a, &p).unwrap() - 0.9486081370449679).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(mae(&[], &[]).is_err());
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(report(&[1.0], &[]).is_err());
    }
}
