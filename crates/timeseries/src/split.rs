//! Temporal dataset splitting.

use crate::error::TimeSeriesError;

/// Splits a series into a leading train slice and trailing test slice.
///
/// The paper uses a *temporal* split — the first 80 % of timestamps train,
/// the final 20 % test — so no shuffling happens here.
///
/// # Errors
///
/// * [`TimeSeriesError::EmptySeries`] for an empty input;
/// * [`TimeSeriesError::InvalidFraction`] unless `0 < train_fraction < 1`.
///
/// # Examples
///
/// ```
/// let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
/// let (train, test) = evfad_timeseries::split::temporal(&data, 0.8)?;
/// assert_eq!(train.len(), 8);
/// assert_eq!(test, &[8.0, 9.0]);
/// # Ok::<(), evfad_timeseries::TimeSeriesError>(())
/// ```
pub fn temporal(series: &[f64], train_fraction: f64) -> Result<(&[f64], &[f64]), TimeSeriesError> {
    if series.is_empty() {
        return Err(TimeSeriesError::EmptySeries);
    }
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(TimeSeriesError::InvalidFraction(train_fraction));
    }
    let cut = ((series.len() as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, series.len() - 1);
    Ok(series.split_at(cut))
}

/// Index of the train/test boundary for a given fraction, matching
/// [`temporal`]. Useful when several aligned series (values, labels) must be
/// split consistently.
///
/// # Errors
///
/// Same conditions as [`temporal`].
pub fn boundary(len: usize, train_fraction: f64) -> Result<usize, TimeSeriesError> {
    if len == 0 {
        return Err(TimeSeriesError::EmptySeries);
    }
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(TimeSeriesError::InvalidFraction(train_fraction));
    }
    Ok((((len as f64) * train_fraction).round() as usize).clamp(1, len - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighty_twenty_on_paper_size() {
        // 4,344 timestamps per client in the paper.
        let series = vec![0.0; 4344];
        let (train, test) = temporal(&series, 0.8).unwrap();
        assert_eq!(train.len(), 3475);
        assert_eq!(test.len(), 869);
    }

    #[test]
    fn boundary_agrees_with_temporal() {
        let series: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let (train, _) = temporal(&series, 0.8).unwrap();
        assert_eq!(boundary(101, 0.8).unwrap(), train.len());
    }

    #[test]
    fn tiny_series_always_keeps_one_test_point() {
        let series = [1.0, 2.0];
        let (train, test) = temporal(&series, 0.99).unwrap();
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn rejects_empty_and_bad_fraction() {
        assert_eq!(temporal(&[], 0.8), Err(TimeSeriesError::EmptySeries));
        assert_eq!(
            temporal(&[1.0], 0.0),
            Err(TimeSeriesError::InvalidFraction(0.0))
        );
        assert_eq!(
            temporal(&[1.0], 1.0),
            Err(TimeSeriesError::InvalidFraction(1.0))
        );
        assert!(boundary(0, 0.5).is_err());
    }

    #[test]
    fn split_preserves_order() {
        let series = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (train, test) = temporal(&series, 0.6).unwrap();
        assert_eq!(train, &[1.0, 2.0, 3.0]);
        assert_eq!(test, &[4.0, 5.0]);
    }
}
