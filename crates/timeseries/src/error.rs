//! Error type for time-series operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the time-series toolkit.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeSeriesError {
    /// Operation requires a non-empty series.
    EmptySeries,
    /// The series is constant, so min-max scaling is undefined.
    DegenerateRange {
        /// The constant value observed.
        value: f64,
    },
    /// A fraction parameter was outside `(0, 1)`.
    InvalidFraction(f64),
    /// Non-finite value encountered where finite input is required.
    NonFiniteValue {
        /// Index of the offending element.
        index: usize,
    },
    /// A mask or auxiliary slice has a different length than the series.
    LengthMismatch {
        /// Series length.
        series: usize,
        /// Auxiliary slice length.
        other: usize,
    },
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::EmptySeries => write!(f, "series is empty"),
            TimeSeriesError::DegenerateRange { value } => {
                write!(f, "series is constant at {value}; min-max range is zero")
            }
            TimeSeriesError::InvalidFraction(p) => {
                write!(f, "fraction {p} is outside (0, 1)")
            }
            TimeSeriesError::NonFiniteValue { index } => {
                write!(f, "non-finite value at index {index}")
            }
            TimeSeriesError::LengthMismatch { series, other } => {
                write!(
                    f,
                    "length mismatch: series has {series} points, got {other}"
                )
            }
        }
    }
}

impl Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(TimeSeriesError::EmptySeries.to_string().contains("empty"));
        assert!(TimeSeriesError::DegenerateRange { value: 2.0 }
            .to_string()
            .contains('2'));
        assert!(TimeSeriesError::InvalidFraction(1.5)
            .to_string()
            .contains("1.5"));
        assert!(TimeSeriesError::NonFiniteValue { index: 7 }
            .to_string()
            .contains('7'));
        assert!(TimeSeriesError::LengthMismatch {
            series: 3,
            other: 4
        }
        .to_string()
        .contains('3'));
    }
}
