//! Sliding-window sequence construction.

use serde::{Deserialize, Serialize};

/// One supervised learning window: `seq_len` inputs and the next value.
///
/// Mirrors the paper's input preparation: `SEQUENCE_LENGTH = 24` hourly
/// values predict the following hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Input slice of length `seq_len` (chronological order).
    pub input: Vec<f64>,
    /// The value immediately following the input window.
    pub target: f64,
    /// Index of `target` within the source series.
    pub target_index: usize,
}

/// Builds every sliding forecast window of length `seq_len`.
///
/// Returns an empty vector when the series is shorter than `seq_len + 1`.
///
/// # Panics
///
/// Panics if `seq_len == 0`.
///
/// # Examples
///
/// ```
/// let w = evfad_timeseries::windows::sliding(&[1.0, 2.0, 3.0, 4.0], 2);
/// assert_eq!(w.len(), 2);
/// assert_eq!(w[0].input, vec![1.0, 2.0]);
/// assert_eq!(w[0].target, 3.0);
/// assert_eq!(w[1].target_index, 3);
/// ```
pub fn sliding(series: &[f64], seq_len: usize) -> Vec<Window> {
    assert!(seq_len > 0, "seq_len must be >= 1");
    if series.len() <= seq_len {
        return Vec::new();
    }
    (0..series.len() - seq_len)
        .map(|start| Window {
            input: series[start..start + seq_len].to_vec(),
            target: series[start + seq_len],
            target_index: start + seq_len,
        })
        .collect()
}

/// Builds every sliding *reconstruction* window of length `seq_len`
/// (no target — used to train the LSTM autoencoder on normal data).
///
/// The window starting at index `i` covers `series[i..i + seq_len]`.
///
/// # Panics
///
/// Panics if `seq_len == 0`.
pub fn reconstruction(series: &[f64], seq_len: usize) -> Vec<Vec<f64>> {
    assert!(seq_len > 0, "seq_len must be >= 1");
    if series.len() < seq_len {
        return Vec::new();
    }
    (0..=series.len() - seq_len)
        .map(|start| series[start..start + seq_len].to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_formula() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(sliding(&series, 24).len(), 76);
        assert_eq!(reconstruction(&series, 24).len(), 77);
    }

    #[test]
    fn windows_are_chronological_and_contiguous() {
        let series = [10.0, 20.0, 30.0, 40.0, 50.0];
        let w = sliding(&series, 3);
        assert_eq!(w[0].input, vec![10.0, 20.0, 30.0]);
        assert_eq!(w[0].target, 40.0);
        assert_eq!(w[1].input, vec![20.0, 30.0, 40.0]);
        assert_eq!(w[1].target, 50.0);
    }

    #[test]
    fn short_series_yield_nothing() {
        assert!(sliding(&[1.0, 2.0], 2).is_empty());
        assert!(sliding(&[1.0], 5).is_empty());
        assert!(reconstruction(&[1.0], 5).is_empty());
    }

    #[test]
    fn reconstruction_exact_length_gives_one_window() {
        let w = reconstruction(&[1.0, 2.0, 3.0], 3);
        assert_eq!(w, vec![vec![1.0, 2.0, 3.0]]);
    }

    #[test]
    fn target_index_points_into_series() {
        let series: Vec<f64> = (0..30).map(|i| i as f64).collect();
        for w in sliding(&series, 7) {
            assert_eq!(series[w.target_index], w.target);
        }
    }

    #[test]
    #[should_panic(expected = "seq_len")]
    fn zero_seq_len_panics() {
        let _ = sliding(&[1.0], 0);
    }
}
