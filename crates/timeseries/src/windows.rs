//! Sliding-window sequence construction.

use serde::{Deserialize, Serialize};

/// One supervised learning window: `seq_len` inputs and the next value.
///
/// Mirrors the paper's input preparation: `SEQUENCE_LENGTH = 24` hourly
/// values predict the following hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Input slice of length `seq_len` (chronological order).
    pub input: Vec<f64>,
    /// The value immediately following the input window.
    pub target: f64,
    /// Index of `target` within the source series.
    pub target_index: usize,
}

/// Builds every sliding forecast window of length `seq_len`.
///
/// Returns an empty vector when the series is shorter than `seq_len + 1`.
///
/// # Panics
///
/// Panics if `seq_len == 0`.
///
/// # Examples
///
/// ```
/// let w = evfad_timeseries::windows::sliding(&[1.0, 2.0, 3.0, 4.0], 2);
/// assert_eq!(w.len(), 2);
/// assert_eq!(w[0].input, vec![1.0, 2.0]);
/// assert_eq!(w[0].target, 3.0);
/// assert_eq!(w[1].target_index, 3);
/// ```
pub fn sliding(series: &[f64], seq_len: usize) -> Vec<Window> {
    assert!(seq_len > 0, "seq_len must be >= 1");
    if series.len() <= seq_len {
        return Vec::new();
    }
    (0..series.len() - seq_len)
        .map(|start| Window {
            input: series[start..start + seq_len].to_vec(),
            target: series[start + seq_len],
            target_index: start + seq_len,
        })
        .collect()
}

/// Builds every sliding *reconstruction* window of length `seq_len`
/// (no target — used to train the LSTM autoencoder on normal data).
///
/// The window starting at index `i` covers `series[i..i + seq_len]`.
///
/// # Panics
///
/// Panics if `seq_len == 0`.
pub fn reconstruction(series: &[f64], seq_len: usize) -> Vec<Vec<f64>> {
    assert!(seq_len > 0, "seq_len must be >= 1");
    if series.len() < seq_len {
        return Vec::new();
    }
    (0..=series.len() - seq_len)
        .map(|start| series[start..start + seq_len].to_vec())
        .collect()
}

/// A zero-copy time-major view of every stride-1 reconstruction window.
///
/// Where [`reconstruction`] materialises one `Vec<f64>` per window (and
/// downstream code re-marshals them into per-window matrices and then a
/// time-major batch), this view exploits the structure of stride-1
/// windows: timestep `t` of windows `first..first + count` is the
/// *contiguous* source slice `series[first + t..first + t + count]`. Hot
/// paths therefore build each time-major step with a single
/// `copy_from_slice` instead of `count * seq_len` scattered reads.
///
/// The values are taken verbatim from the same series positions the
/// allocating path reads, so any batch assembled from [`WindowedSeries::step`]
/// slices is bitwise identical to `reconstruction` + per-window matrices +
/// time-major batching (pinned by proptest in `evfad-anomaly`).
///
/// # Examples
///
/// ```
/// use evfad_timeseries::windows::WindowedSeries;
///
/// let series = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let ws = WindowedSeries::new(&series, 3).unwrap();
/// assert_eq!(ws.len(), 3);
/// assert_eq!(ws.window(1), &[2.0, 3.0, 4.0]);
/// // Timestep 1 of windows 0..3 is the contiguous slice starting at 1.
/// assert_eq!(ws.step(1, 0, 3), &[2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WindowedSeries<'a> {
    series: &'a [f64],
    seq_len: usize,
}

impl<'a> WindowedSeries<'a> {
    /// Views `series` as its stride-1 windows of length `seq_len`.
    ///
    /// Returns `None` when the series is shorter than one window (the
    /// case where [`reconstruction`] returns an empty vector).
    ///
    /// # Panics
    ///
    /// Panics if `seq_len == 0`.
    pub fn new(series: &'a [f64], seq_len: usize) -> Option<Self> {
        assert!(seq_len > 0, "seq_len must be >= 1");
        if series.len() < seq_len {
            return None;
        }
        Some(Self { series, seq_len })
    }

    /// Window length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of windows (`series.len() - seq_len + 1`).
    #[allow(clippy::len_without_is_empty)] // >= 1 window by construction
    pub fn len(&self) -> usize {
        self.series.len() - self.seq_len + 1
    }

    /// Timestep `t` of the `count` windows starting at window `first`,
    /// as one contiguous slice (`series[first + t..first + t + count]`).
    ///
    /// # Panics
    ///
    /// Panics if `t >= seq_len` or `first + count > self.len()`.
    pub fn step(&self, t: usize, first: usize, count: usize) -> &'a [f64] {
        assert!(t < self.seq_len, "timestep {t} out of range");
        assert!(
            first + count <= self.len(),
            "window range {first}..{} out of range ({} windows)",
            first + count,
            self.len()
        );
        &self.series[first + t..first + t + count]
    }

    /// The window starting at series index `w`
    /// (`series[w..w + seq_len]` — what `reconstruction(...)[w]` holds).
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.len()`.
    pub fn window(&self, w: usize) -> &'a [f64] {
        assert!(w < self.len(), "window {w} out of range ({})", self.len());
        &self.series[w..w + self.seq_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_formula() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(sliding(&series, 24).len(), 76);
        assert_eq!(reconstruction(&series, 24).len(), 77);
    }

    #[test]
    fn windows_are_chronological_and_contiguous() {
        let series = [10.0, 20.0, 30.0, 40.0, 50.0];
        let w = sliding(&series, 3);
        assert_eq!(w[0].input, vec![10.0, 20.0, 30.0]);
        assert_eq!(w[0].target, 40.0);
        assert_eq!(w[1].input, vec![20.0, 30.0, 40.0]);
        assert_eq!(w[1].target, 50.0);
    }

    #[test]
    fn short_series_yield_nothing() {
        assert!(sliding(&[1.0, 2.0], 2).is_empty());
        assert!(sliding(&[1.0], 5).is_empty());
        assert!(reconstruction(&[1.0], 5).is_empty());
    }

    #[test]
    fn reconstruction_exact_length_gives_one_window() {
        let w = reconstruction(&[1.0, 2.0, 3.0], 3);
        assert_eq!(w, vec![vec![1.0, 2.0, 3.0]]);
    }

    #[test]
    fn target_index_points_into_series() {
        let series: Vec<f64> = (0..30).map(|i| i as f64).collect();
        for w in sliding(&series, 7) {
            assert_eq!(series[w.target_index], w.target);
        }
    }

    #[test]
    #[should_panic(expected = "seq_len")]
    fn zero_seq_len_panics() {
        let _ = sliding(&[1.0], 0);
    }

    #[test]
    fn windowed_series_matches_reconstruction() {
        let series: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let wins = reconstruction(&series, 24);
        let ws = WindowedSeries::new(&series, 24).expect("long enough");
        assert_eq!(ws.len(), wins.len());
        assert_eq!(ws.seq_len(), 24);
        for (w, win) in wins.iter().enumerate() {
            assert_eq!(ws.window(w), win.as_slice());
        }
        // step(t, first, count)[i] is window (first + i)'s element t.
        #[allow(clippy::needless_range_loop)]
        for t in 0..24 {
            let step = ws.step(t, 3, 10);
            for (i, &v) in step.iter().enumerate() {
                assert_eq!(v, wins[3 + i][t]);
            }
        }
    }

    #[test]
    fn windowed_series_too_short_is_none() {
        assert!(WindowedSeries::new(&[1.0, 2.0], 3).is_none());
        assert!(WindowedSeries::new(&[1.0, 2.0, 3.0], 3).is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn windowed_series_step_bounds_panic() {
        let series = [1.0, 2.0, 3.0, 4.0];
        let ws = WindowedSeries::new(&series, 2).unwrap();
        let _ = ws.step(0, 2, 2);
    }
}
