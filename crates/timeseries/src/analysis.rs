//! Series analysis: seasonal decomposition and autocorrelation.
//!
//! Used by the `data_exploration` example to verify that the synthetic
//! dataset exhibits the structure the paper's dataset has (daily
//! seasonality, weekly modulation, zone heterogeneity), and by downstream
//! users to analyse their own charging data before modelling.

use crate::error::TimeSeriesError;
use serde::{Deserialize, Serialize};

/// A classical additive decomposition `series = trend + seasonal + residual`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Centred-moving-average trend (edges hold the nearest estimate).
    pub trend: Vec<f64>,
    /// Period-averaged seasonal component (zero mean over one period).
    pub seasonal: Vec<f64>,
    /// What remains.
    pub residual: Vec<f64>,
    /// The period used.
    pub period: usize,
}

impl Decomposition {
    /// Fraction of the detrended variance explained by the seasonal
    /// component — a quick "how periodic is this" statistic in `[0, 1]`.
    pub fn seasonal_strength(&self) -> f64 {
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len().max(1) as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len().max(1) as f64
        };
        let vs = var(&self.seasonal);
        let vr = var(&self.residual);
        if vs + vr == 0.0 {
            0.0
        } else {
            vs / (vs + vr)
        }
    }
}

/// Classical moving-average decomposition with the given `period`.
///
/// # Errors
///
/// * [`TimeSeriesError::EmptySeries`] for an empty series;
/// * [`TimeSeriesError::InvalidFraction`] if `period < 2` or the series is
///   shorter than two periods.
///
/// # Examples
///
/// ```
/// let series: Vec<f64> = (0..240)
///     .map(|i| 10.0 + (i as f64 * std::f64::consts::TAU / 24.0).sin())
///     .collect();
/// let d = evfad_timeseries::analysis::decompose(&series, 24)?;
/// assert!(d.seasonal_strength() > 0.9);
/// # Ok::<(), evfad_timeseries::TimeSeriesError>(())
/// ```
pub fn decompose(series: &[f64], period: usize) -> Result<Decomposition, TimeSeriesError> {
    if series.is_empty() {
        return Err(TimeSeriesError::EmptySeries);
    }
    if period < 2 || series.len() < 2 * period {
        return Err(TimeSeriesError::InvalidFraction(period as f64));
    }
    let n = series.len();
    // Centred moving average of width `period` (+1 for even periods, with
    // half-weights at the ends — the classical construction). Edge points
    // reuse the nearest fully-covered centre so the window always spans a
    // whole period and the seasonal component cannot leak into the trend.
    let half = period / 2;
    let mut trend = vec![0.0; n];
    for (i, t) in trend.iter_mut().enumerate() {
        let centre = i.clamp(half, n - 1 - half);
        let window = &series[centre - half..=centre + half];
        *t = if period.is_multiple_of(2) {
            let inner: f64 = window[1..window.len() - 1].iter().sum();
            (inner + 0.5 * (window[0] + window[window.len() - 1])) / period as f64
        } else {
            window.iter().sum::<f64>() / window.len() as f64
        };
    }
    // Seasonal means of the detrended series.
    let mut sums = vec![0.0; period];
    let mut counts = vec![0usize; period];
    for i in 0..n {
        sums[i % period] += series[i] - trend[i];
        counts[i % period] += 1;
    }
    let mut means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    let grand = means.iter().sum::<f64>() / period as f64;
    for m in &mut means {
        *m -= grand; // zero-mean seasonal component
    }
    let seasonal: Vec<f64> = (0..n).map(|i| means[i % period]).collect();
    let residual: Vec<f64> = (0..n).map(|i| series[i] - trend[i] - seasonal[i]).collect();
    Ok(Decomposition {
        trend,
        seasonal,
        residual,
        period,
    })
}

/// Sample autocorrelation at lags `0..=max_lag`.
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] for an empty series.
///
/// # Examples
///
/// ```
/// let series: Vec<f64> = (0..200)
///     .map(|i| (i as f64 * std::f64::consts::TAU / 24.0).sin())
///     .collect();
/// let acf = evfad_timeseries::analysis::autocorrelation(&series, 24)?;
/// assert!((acf[0] - 1.0).abs() < 1e-12);
/// assert!(acf[24] > 0.8); // strong daily correlation
/// assert!(acf[12] < -0.8); // anti-phase at half a day
/// # Ok::<(), evfad_timeseries::TimeSeriesError>(())
/// ```
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Result<Vec<f64>, TimeSeriesError> {
    if series.is_empty() {
        return Err(TimeSeriesError::EmptySeries);
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag.min(n - 1) {
        if var == 0.0 {
            acf.push(if lag == 0 { 1.0 } else { 0.0 });
            continue;
        }
        let cov: f64 = series[..n - lag]
            .iter()
            .zip(&series[lag..])
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum();
        acf.push(cov / var);
    }
    Ok(acf)
}

/// The dominant period: the local-maximum lag of the ACF with the highest
/// correlation (in `2..max_lag`). Restricting to local maxima skips the
/// trivially high small-lag correlations of smooth or trending series.
///
/// Falls back to the global argmax if the ACF has no interior local
/// maximum (e.g. a pure trend).
///
/// # Errors
///
/// [`TimeSeriesError::EmptySeries`] for an empty series.
pub fn dominant_period(series: &[f64], max_lag: usize) -> Result<usize, TimeSeriesError> {
    let acf = autocorrelation(series, max_lag)?;
    let mut best: Option<(usize, f64)> = None;
    for lag in 2..acf.len().saturating_sub(1) {
        let is_local_max = acf[lag] > acf[lag - 1] && acf[lag] >= acf[lag + 1];
        if is_local_max && best.is_none_or(|(_, v)| acf[lag] > v) {
            best = Some((lag, acf[lag]));
        }
    }
    if let Some((lag, _)) = best {
        return Ok(lag);
    }
    let mut arg = 1;
    let mut val = f64::NEG_INFINITY;
    for (lag, &v) in acf.iter().enumerate().skip(1) {
        if v > val {
            val = v;
            arg = lag;
        }
    }
    Ok(arg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 20.0 + 0.01 * i as f64 + 5.0 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    #[test]
    fn decompose_recovers_components() {
        let series = seasonal_series(24 * 20);
        let d = decompose(&series, 24).unwrap();
        // Trend is increasing overall.
        assert!(d.trend[d.trend.len() - 20] > d.trend[20]);
        // Seasonal has zero mean over a period.
        let s: f64 = d.seasonal[..24].iter().sum();
        assert!(s.abs() < 1e-9);
        // Residual is small relative to the seasonal swing.
        let max_resid = d.residual.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        assert!(max_resid < 2.0, "max residual {max_resid}");
        assert!(d.seasonal_strength() > 0.8);
    }

    #[test]
    fn decompose_sums_back_to_series() {
        let series = seasonal_series(24 * 10);
        let d = decompose(&series, 24).unwrap();
        for (i, &v) in series.iter().enumerate() {
            let sum = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((sum - v).abs() < 1e-9);
        }
    }

    #[test]
    fn decompose_rejects_short_series() {
        assert!(decompose(&[1.0; 30], 24).is_err());
        assert!(decompose(&[], 24).is_err());
        assert!(decompose(&[1.0; 100], 1).is_err());
    }

    #[test]
    fn acf_of_white_noise_is_small() {
        // Deterministic pseudo-noise via a chaotic map.
        let mut x = 0.37;
        let series: Vec<f64> = (0..2000)
            .map(|_| {
                x = (3.99 * x * (1.0 - x)) % 1.0;
                x
            })
            .collect();
        let acf = autocorrelation(&series, 10).unwrap();
        for &v in &acf[1..] {
            assert!(v.abs() < 0.2, "noise ACF too high: {v}");
        }
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let acf = autocorrelation(&[1.0, 3.0, 2.0, 5.0], 2).unwrap();
        assert!((acf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_constant_series_defined() {
        let acf = autocorrelation(&[2.0; 10], 3).unwrap();
        assert_eq!(acf, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn dominant_period_finds_daily_cycle() {
        let series = seasonal_series(24 * 15);
        let p = dominant_period(&series, 30).unwrap();
        assert_eq!(p, 24);
    }

    #[test]
    fn seasonal_strength_zero_for_pure_noise_period() {
        // A linear ramp has no 24h seasonality.
        let series: Vec<f64> = (0..240).map(|i| i as f64).collect();
        let d = decompose(&series, 24).unwrap();
        assert!(d.seasonal_strength() < 0.6);
    }
}
