//! Min-max normalisation with sklearn semantics.

use crate::error::TimeSeriesError;
use serde::{Deserialize, Serialize};

/// Scales values to `[0, 1]` using the min/max observed at fit time.
///
/// The paper applies `MinMaxScaler` *independently per client* and re-fits
/// for each experimental scenario (clean / attacked / filtered), which this
/// type mirrors: construct one scaler per client per scenario.
///
/// Values outside the fitted range transform outside `[0, 1]` (sklearn
/// behaviour) — important because DDoS spikes in test data exceed the
/// training maximum.
///
/// # Examples
///
/// ```
/// use evfad_timeseries::MinMaxScaler;
///
/// let scaler = MinMaxScaler::fit(&[10.0, 20.0, 30.0])?;
/// let scaled = scaler.transform(&[15.0, 30.0]);
/// assert_eq!(scaled, vec![0.25, 1.0]);
/// let restored = scaler.inverse_transform(&scaled);
/// assert!((restored[0] - 15.0).abs() < 1e-12);
/// # Ok::<(), evfad_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    min: f64,
    max: f64,
}

impl MinMaxScaler {
    /// Fits the scaler to `values`.
    ///
    /// # Errors
    ///
    /// * [`TimeSeriesError::EmptySeries`] for an empty input;
    /// * [`TimeSeriesError::NonFiniteValue`] if any value is NaN/∞;
    /// * [`TimeSeriesError::DegenerateRange`] if the series is constant.
    pub fn fit(values: &[f64]) -> Result<Self, TimeSeriesError> {
        if values.is_empty() {
            return Err(TimeSeriesError::EmptySeries);
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(TimeSeriesError::NonFiniteValue { index });
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if min == max {
            return Err(TimeSeriesError::DegenerateRange { value: min });
        }
        Ok(Self { min, max })
    }

    /// Fitted minimum.
    pub fn data_min(&self) -> f64 {
        self.min
    }

    /// Fitted maximum.
    pub fn data_max(&self) -> f64 {
        self.max
    }

    /// Maps each value through `(v - min) / (max - min)`.
    pub fn transform(&self, values: &[f64]) -> Vec<f64> {
        let range = self.max - self.min;
        values.iter().map(|v| (v - self.min) / range).collect()
    }

    /// Scales a single value.
    pub fn transform_one(&self, value: f64) -> f64 {
        (value - self.min) / (self.max - self.min)
    }

    /// Inverse of [`MinMaxScaler::transform`].
    pub fn inverse_transform(&self, values: &[f64]) -> Vec<f64> {
        let range = self.max - self.min;
        values.iter().map(|v| v * range + self.min).collect()
    }

    /// Inverse-scales a single value.
    pub fn inverse_transform_one(&self, value: f64) -> f64 {
        value * (self.max - self.min) + self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_maps_to_unit_interval() {
        let v = [5.0, 7.5, 10.0];
        let s = MinMaxScaler::fit(&v).unwrap();
        assert_eq!(s.transform(&v), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn out_of_range_values_exceed_unit_interval() {
        let s = MinMaxScaler::fit(&[0.0, 10.0]).unwrap();
        assert_eq!(s.transform_one(20.0), 2.0);
        assert_eq!(s.transform_one(-10.0), -1.0);
    }

    #[test]
    fn inverse_round_trips() {
        let v = [3.1, -2.7, 9.9, 0.0];
        let s = MinMaxScaler::fit(&v).unwrap();
        let back = s.inverse_transform(&s.transform(&v));
        for (a, b) in v.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(MinMaxScaler::fit(&[]), Err(TimeSeriesError::EmptySeries));
    }

    #[test]
    fn rejects_constant() {
        assert!(matches!(
            MinMaxScaler::fit(&[4.0, 4.0]),
            Err(TimeSeriesError::DegenerateRange { .. })
        ));
    }

    #[test]
    fn rejects_nan() {
        assert_eq!(
            MinMaxScaler::fit(&[1.0, f64::NAN]),
            Err(TimeSeriesError::NonFiniteValue { index: 1 })
        );
    }

    #[test]
    fn accessors_expose_fit_state() {
        let s = MinMaxScaler::fit(&[-1.0, 3.0]).unwrap();
        assert_eq!(s.data_min(), -1.0);
        assert_eq!(s.data_max(), 3.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = MinMaxScaler::fit(&[0.5, 2.5]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: MinMaxScaler = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
