//! Gap-filling strategies for flagged (anomalous/missing) points.
//!
//! The paper's `filter_anomalies` replaces attack-flagged segments by linear
//! interpolation between the surrounding non-anomalous points
//! ([`linear`]). The paper's future-work section calls for more advanced
//! reconstruction; [`seasonal_naive`] and [`hold_last`] are provided as
//! ablation alternatives (benchmarked in `evfad-bench`).

use crate::error::TimeSeriesError;

fn check_mask(series: &[f64], mask: &[bool]) -> Result<(), TimeSeriesError> {
    if series.is_empty() {
        return Err(TimeSeriesError::EmptySeries);
    }
    if series.len() != mask.len() {
        return Err(TimeSeriesError::LengthMismatch {
            series: series.len(),
            other: mask.len(),
        });
    }
    Ok(())
}

/// Linearly interpolates every masked run between its nearest unmasked
/// neighbours.
///
/// Leading (trailing) masked runs are back-filled (forward-filled) with the
/// first (last) valid value. A fully masked series is returned unchanged —
/// there is no anchor to interpolate from.
///
/// # Errors
///
/// * [`TimeSeriesError::EmptySeries`] for an empty series;
/// * [`TimeSeriesError::LengthMismatch`] if `mask.len() != series.len()`.
///
/// # Examples
///
/// ```
/// use evfad_timeseries::impute::linear;
///
/// let series = [1.0, 100.0, 100.0, 4.0];
/// let mask = [false, true, true, false];
/// let fixed = linear(&series, &mask)?;
/// assert_eq!(fixed, vec![1.0, 2.0, 3.0, 4.0]);
/// # Ok::<(), evfad_timeseries::TimeSeriesError>(())
/// ```
pub fn linear(series: &[f64], mask: &[bool]) -> Result<Vec<f64>, TimeSeriesError> {
    check_mask(series, mask)?;
    let mut out = series.to_vec();
    let n = series.len();
    let mut i = 0;
    while i < n {
        if !mask[i] {
            i += 1;
            continue;
        }
        // Masked run [i, j).
        let mut j = i;
        while j < n && mask[j] {
            j += 1;
        }
        let left = i.checked_sub(1).filter(|&l| !mask[l]);
        let right = (j < n).then_some(j);
        match (left, right) {
            (Some(l), Some(r)) => {
                let span = (r - l) as f64;
                for (offset, slot) in out[i..j].iter_mut().enumerate() {
                    let frac = (i - l + offset) as f64 / span;
                    *slot = series[l] * (1.0 - frac) + series[r] * frac;
                }
            }
            (None, Some(r)) => {
                for slot in &mut out[i..j] {
                    *slot = series[r];
                }
            }
            (Some(l), None) => {
                for slot in &mut out[i..j] {
                    *slot = series[l];
                }
            }
            (None, None) => {} // fully masked: nothing to anchor on
        }
        i = j;
    }
    Ok(out)
}

/// Replaces each masked point with the value `period` steps earlier
/// (falling back to [`linear`] when no earlier unmasked value exists).
///
/// For hourly EV-charging data `period = 24` substitutes "same hour
/// yesterday", preserving the daily shape the paper's forecaster learns.
///
/// # Errors
///
/// Same conditions as [`linear`]; additionally `period` must be non-zero or
/// [`TimeSeriesError::InvalidFraction`] is returned.
pub fn seasonal_naive(
    series: &[f64],
    mask: &[bool],
    period: usize,
) -> Result<Vec<f64>, TimeSeriesError> {
    check_mask(series, mask)?;
    if period == 0 {
        return Err(TimeSeriesError::InvalidFraction(0.0));
    }
    let fallback = linear(series, mask)?;
    let mut out = series.to_vec();
    for i in 0..series.len() {
        if !mask[i] {
            continue;
        }
        // Walk back whole periods until an unmasked donor is found.
        let mut donor = None;
        let mut back = i;
        while back >= period {
            back -= period;
            if !mask[back] {
                donor = Some(out[back]);
                break;
            }
        }
        out[i] = donor.unwrap_or(fallback[i]);
    }
    Ok(out)
}

/// Replaces each masked point with the most recent unmasked value
/// (back-filling leading masked points from the first valid one).
///
/// # Errors
///
/// Same conditions as [`linear`].
pub fn hold_last(series: &[f64], mask: &[bool]) -> Result<Vec<f64>, TimeSeriesError> {
    check_mask(series, mask)?;
    let mut out = series.to_vec();
    let first_valid = mask.iter().position(|&m| !m);
    let Some(first_valid) = first_valid else {
        return Ok(out); // fully masked
    };
    let mut last = series[first_valid];
    for i in 0..out.len() {
        if mask[i] {
            out[i] = last;
        } else {
            last = out[i];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolates_interior_run() {
        let s = [0.0, 9.0, 9.0, 9.0, 4.0];
        let m = [false, true, true, true, false];
        assert_eq!(linear(&s, &m).unwrap(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn linear_backfills_leading_run() {
        let s = [9.0, 9.0, 5.0, 6.0];
        let m = [true, true, false, false];
        assert_eq!(linear(&s, &m).unwrap(), vec![5.0, 5.0, 5.0, 6.0]);
    }

    #[test]
    fn linear_forward_fills_trailing_run() {
        let s = [1.0, 2.0, 9.0, 9.0];
        let m = [false, false, true, true];
        assert_eq!(linear(&s, &m).unwrap(), vec![1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn linear_fully_masked_is_identity() {
        let s = [7.0, 8.0];
        let m = [true, true];
        assert_eq!(linear(&s, &m).unwrap(), vec![7.0, 8.0]);
    }

    #[test]
    fn linear_no_mask_is_identity() {
        let s = [1.0, 2.0, 3.0];
        let m = [false, false, false];
        assert_eq!(linear(&s, &m).unwrap(), s.to_vec());
    }

    #[test]
    fn linear_multiple_separate_runs() {
        let s = [0.0, 9.0, 2.0, 9.0, 4.0];
        let m = [false, true, false, true, false];
        assert_eq!(linear(&s, &m).unwrap(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn linear_rejects_length_mismatch() {
        assert!(matches!(
            linear(&[1.0, 2.0], &[true]),
            Err(TimeSeriesError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn seasonal_uses_previous_period() {
        let s = [1.0, 2.0, 3.0, 9.0, 9.0, 9.0];
        let m = [false, false, false, true, true, true];
        let fixed = seasonal_naive(&s, &m, 3).unwrap();
        assert_eq!(fixed, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn seasonal_skips_masked_donor() {
        // Donor at i-3 is masked; walks back to i-6.
        let s = [1.0, 0.0, 0.0, 9.0, 0.0, 0.0, 9.0, 0.0, 0.0];
        let m = [false, false, false, true, false, false, true, false, false];
        let fixed = seasonal_naive(&s, &m, 3).unwrap();
        assert_eq!(fixed[6], 1.0); // donor i=3 masked -> i=0
    }

    #[test]
    fn seasonal_falls_back_to_linear_at_series_start() {
        let s = [9.0, 2.0, 3.0];
        let m = [true, false, false];
        let fixed = seasonal_naive(&s, &m, 24).unwrap();
        assert_eq!(fixed[0], 2.0); // back-filled by the linear fallback
    }

    #[test]
    fn seasonal_rejects_zero_period() {
        assert!(seasonal_naive(&[1.0], &[false], 0).is_err());
    }

    #[test]
    fn hold_last_carries_forward() {
        let s = [1.0, 9.0, 9.0, 4.0, 9.0];
        let m = [false, true, true, false, true];
        assert_eq!(hold_last(&s, &m).unwrap(), vec![1.0, 1.0, 1.0, 4.0, 4.0]);
    }

    #[test]
    fn hold_last_backfills_leading() {
        let s = [9.0, 9.0, 3.0];
        let m = [true, true, false];
        assert_eq!(hold_last(&s, &m).unwrap(), vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn all_strategies_leave_unmasked_points_untouched() {
        let s: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let m: Vec<bool> = (0..50).map(|i| i % 7 == 3).collect();
        for fixed in [
            linear(&s, &m).unwrap(),
            seasonal_naive(&s, &m, 10).unwrap(),
            hold_last(&s, &m).unwrap(),
        ] {
            for i in 0..50 {
                if !m[i] {
                    assert_eq!(fixed[i], s[i]);
                }
            }
        }
    }
}
