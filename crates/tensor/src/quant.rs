//! Shared EVQ8 range-quantization math.
//!
//! One implementation of the 8-bit uniform range fold, used by **both**
//! consumers in the workspace:
//!
//! - the federated uplink codec (`evfad_federated::compression`, wire tag
//!   `EVQ8`) — where byte-exact re-encode identity is a wire-format
//!   contract, and
//! - the int8 inference lane (`fastpath` / `evfad_nn::infer`) — where the
//!   same fold quantizes frozen layer weights for f32-accumulate scoring.
//!
//! Keeping the fold here (the lowest layer) means a change to the rounding
//! or range rules cannot silently diverge between the two: the codec's
//! re-encode identity test and the inference error-bound gates both pin
//! this exact code.
//!
//! # The fold
//!
//! Only **finite** values participate in the range: NaN and ±∞ are skipped
//! (callers transmit or handle them out of band). With no finite value at
//! all, the range degenerates to `[0, 0]`. The step is `(max - min) / 255`
//! (256 levels), or exactly `0.0` for a constant/empty tensor — in which
//! case every code is 0 and decode returns `min` exactly.

/// Quantization range of one tensor: the minimum finite value and the
/// uniform step between the 256 levels.
///
/// # Examples
///
/// ```
/// use evfad_tensor::quant::QuantRange;
///
/// let r = QuantRange::from_values(&[-1.0, 0.5, 2.0, f64::NAN]);
/// assert_eq!(r.min, -1.0);
/// assert_eq!(r.step, 3.0 / 255.0);
/// // Extremes are exact.
/// assert_eq!(r.decode(r.encode(-1.0)), -1.0);
/// assert_eq!(r.decode(r.encode(2.0)), 2.0);
/// // Everything else is within half a step.
/// let v = 0.73;
/// assert!((r.decode(r.encode(v)) - v).abs() <= r.max_error());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantRange {
    /// Minimum finite value of the folded slice (`0.0` when none).
    pub min: f64,
    /// Uniform step between adjacent levels (`(max - min) / 255`, or `0.0`
    /// for a constant, empty, or fully non-finite slice).
    pub step: f64,
}

impl QuantRange {
    /// Folds a slice into its quantization range, skipping non-finite
    /// values. An empty or fully non-finite slice yields `{min: 0, step: 0}`.
    pub fn from_values(values: &[f64]) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        // No finite value at all: empty or fully non-finite slice.
        if min > max {
            min = 0.0;
            max = 0.0;
        }
        let range = max - min;
        let step = if range > 0.0 { range / 255.0 } else { 0.0 };
        Self { min, step }
    }

    /// Encodes one finite value as the nearest of the 256 levels.
    ///
    /// Out-of-range values clamp to the extreme codes. With a zero step
    /// (constant/empty fold) every value maps to code 0. Callers are
    /// responsible for routing non-finite values around the codec (the
    /// wire format carries them verbatim as side records).
    pub fn encode(&self, v: f64) -> u8 {
        if self.step == 0.0 {
            0
        } else {
            ((v - self.min) / self.step).round().clamp(0.0, 255.0) as u8
        }
    }

    /// Decodes a level back to its representative value: `min + code·step`.
    pub fn decode(&self, code: u8) -> f64 {
        self.min + code as f64 * self.step
    }

    /// Worst-case absolute round-trip error over finite in-range values:
    /// half a step.
    pub fn max_error(&self) -> f64 {
        self.step / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_degenerates_to_zero_range() {
        let r = QuantRange::from_values(&[]);
        assert_eq!(
            r,
            QuantRange {
                min: 0.0,
                step: 0.0
            }
        );
        assert_eq!(r.encode(123.0), 0);
        assert_eq!(r.decode(0), 0.0);
        assert_eq!(r.max_error(), 0.0);
    }

    #[test]
    fn fully_non_finite_slice_degenerates_to_zero_range() {
        let r = QuantRange::from_values(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(
            r,
            QuantRange {
                min: 0.0,
                step: 0.0
            }
        );
    }

    #[test]
    fn constant_slice_is_exact() {
        let r = QuantRange::from_values(&[3.25, 3.25, 3.25]);
        assert_eq!(r.step, 0.0);
        assert_eq!(r.decode(r.encode(3.25)), 3.25);
    }

    #[test]
    fn non_finite_values_do_not_poison_the_range() {
        let with = QuantRange::from_values(&[1.0, f64::NAN, -3.0, f64::INFINITY]);
        let without = QuantRange::from_values(&[1.0, -3.0]);
        assert_eq!(with, without);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let values: Vec<f64> = (0..100)
            .map(|i| (i * 37 % 100) as f64 * 0.013 - 0.5)
            .collect();
        let r = QuantRange::from_values(&values);
        for &v in &values {
            assert!((r.decode(r.encode(v)) - v).abs() <= r.max_error() + 1e-12);
        }
    }

    #[test]
    fn out_of_range_values_clamp_to_extreme_codes() {
        let r = QuantRange::from_values(&[0.0, 1.0]);
        assert_eq!(r.encode(-50.0), 0);
        assert_eq!(r.encode(50.0), 255);
    }
}
