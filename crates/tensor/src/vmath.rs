//! Vectorizable elementwise transcendentals for the inference lanes.
//!
//! The training path calls libm's `tanh`/`exp` one scalar at a time —
//! bitwise-pinned, branchy, and ~15–20 ns per call (the f32 `tanh`
//! fallback on some libms is over 10× worse). For a served LSTM stack the
//! gate nonlinearities are thousands of calls per window, which makes
//! them the dominant cost of a batched forward once the GEMMs are
//! blocked. This module provides branch-free, polynomial sigmoid/tanh
//! over contiguous slices: every lane runs the same instruction sequence
//! (clamp, round, two-term Cody–Waite reduction, Horner with `mul_add`,
//! exponent reassembly via bit manipulation), so LLVM auto-vectorizes the
//! loops with the FMA units the exact kernels are not allowed to use.
//!
//! Accuracy: the f64 kernels are Taylor-to-degree-12 on the reduced
//! interval `|r| ≤ ln2/2` — absolute error under ~1e-15, far inside the
//! serving tier's 1e-9 end-to-end gate. The f32 kernels carry the same
//! structure to degree 7 (~1e-7 absolute — noise next to int8 weight
//! quantization). Like every approximate path in the workspace these are
//! **never** called from training code: the exact lanes keep libm.
//!
//! Inputs are clamped to the transcendentals' saturation range first, so
//! any finite input is safe; NaN propagates.

/// Cody–Waite high part of ln 2 (f64).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Cody–Waite low part of ln 2 (f64).
const LN2_LO: f64 = 1.908_214_929_270_588e-10;

/// `exp(x)` for `|x| ≤ ~700`, branch-free, ~1 ulp from the degree-12
/// Taylor core on the reduced interval. Callers clamp.
#[inline(always)]
fn exp_core_f64(x: f64) -> f64 {
    let n = (x * std::f64::consts::LOG2_E).round();
    let r = (-n).mul_add(LN2_HI, x);
    let r = (-n).mul_add(LN2_LO, r);
    // Horner over 1/k!, k = 12 ..= 0; |r| ≤ 0.3466 keeps the truncation
    // under 2e-16 relative.
    let mut p: f64 = 2.087_675_698_786_81e-9; // 1/12!
    p = p.mul_add(r, 2.505_210_838_544_172e-8); // 1/11!
    p = p.mul_add(r, 2.755_731_922_398_589e-7); // 1/10!
    p = p.mul_add(r, 2.755_731_922_398_589e-6); // 1/9!
    p = p.mul_add(r, 2.480_158_730_158_73e-5); // 1/8!
    p = p.mul_add(r, 1.984_126_984_126_984e-4); // 1/7!
    p = p.mul_add(r, 1.388_888_888_888_889e-3); // 1/6!
    p = p.mul_add(r, 8.333_333_333_333_333e-3); // 1/5!
    p = p.mul_add(r, 4.166_666_666_666_666e-2); // 1/4!
    p = p.mul_add(r, 1.666_666_666_666_666_6e-1); // 1/3!
    p = p.mul_add(r, 0.5);
    p = p.mul_add(r, 1.0);
    p = p.mul_add(r, 1.0);
    // 2^n by exponent-field assembly (n is within ±1023 after clamping).
    let scale = f64::from_bits(((n as i64 + 1023) as u64) << 52);
    p * scale
}

/// `exp(x)` for `|x| ≤ ~85`, f32, branch-free, degree-7 core.
#[inline(always)]
fn exp_core_f32(x: f32) -> f32 {
    let n = (x * std::f32::consts::LOG2_E).round();
    let r = (-n).mul_add(std::f32::consts::LN_2, x);
    let mut p = 1.984_127e-4f32; // 1/7!
    p = p.mul_add(r, 1.388_888_9e-3); // 1/6!
    p = p.mul_add(r, 8.333_334e-3); // 1/5!
    p = p.mul_add(r, 4.166_666_6e-2); // 1/4!
    p = p.mul_add(r, 1.666_666_7e-1); // 1/3!
    p = p.mul_add(r, 0.5);
    p = p.mul_add(r, 1.0);
    p = p.mul_add(r, 1.0);
    let scale = f32::from_bits(((n as i32 + 127) as u32) << 23);
    p * scale
}

/// In-place logistic sigmoid over a slice, `σ(x) = 1/(1+e^(-x))`.
///
/// Absolute error under ~1e-15; saturates beyond `|x| ≈ 40` (to exactly
/// 1.0 on the high side, to `σ(-40) ≈ 4e-18` on the low side).
pub fn sigmoid_f64(xs: &mut [f64]) {
    for v in xs {
        let x = v.clamp(-40.0, 40.0);
        *v = 1.0 / (1.0 + exp_core_f64(-x));
    }
}

/// In-place `tanh` over a slice via `(e^(2x)-1)/(e^(2x)+1)`.
///
/// Absolute error under ~1e-15 across the full range (the `e^(2x)-1`
/// cancellation near zero is benign in absolute terms).
pub fn tanh_f64(xs: &mut [f64]) {
    for v in xs {
        let x2 = (2.0 * *v).clamp(-80.0, 80.0);
        let e = exp_core_f64(x2);
        *v = (e - 1.0) / (e + 1.0);
    }
}

/// In-place f32 logistic sigmoid; absolute error under ~1e-6.
pub fn sigmoid_f32(xs: &mut [f32]) {
    for v in xs {
        let x = v.clamp(-30.0, 30.0);
        *v = 1.0 / (1.0 + exp_core_f32(-x));
    }
}

/// In-place f32 `tanh`; absolute error under ~1e-6.
pub fn tanh_f32(xs: &mut [f32]) {
    for v in xs {
        let x2 = (2.0 * *v).clamp(-60.0, 60.0);
        let e = exp_core_f32(x2);
        *v = (e - 1.0) / (e + 1.0);
    }
}

/// Scalar f32 `tanh` (the slice kernel applied to one value) — for fused
/// epilogues that cannot batch, where libm's `tanhf` would dominate.
#[inline]
pub fn tanh1_f32(x: f32) -> f32 {
    let mut v = [x];
    tanh_f32(&mut v);
    v[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_sigmoid_matches_libm_tightly() {
        let mut worst = 0.0f64;
        for i in -4000..=4000 {
            let x = i as f64 * 0.01; // ±40
            let mut v = [x];
            sigmoid_f64(&mut v);
            let exact = 1.0 / (1.0 + (-x).exp());
            worst = worst.max((v[0] - exact).abs());
        }
        assert!(worst < 5e-15, "sigmoid drift {worst}");
    }

    #[test]
    fn f64_tanh_matches_libm_tightly() {
        let mut worst = 0.0f64;
        for i in -4000..=4000 {
            let x = i as f64 * 0.01;
            let mut v = [x];
            tanh_f64(&mut v);
            worst = worst.max((v[0] - x.tanh()).abs());
        }
        assert!(worst < 5e-15, "tanh drift {worst}");
    }

    #[test]
    fn f64_kernels_saturate_and_propagate_nan() {
        let mut v = [1e6, -1e6, f64::NAN];
        sigmoid_f64(&mut v);
        assert_eq!(v[0], 1.0);
        assert!(v[1] >= 0.0 && v[1] < 1e-17, "low saturation {}", v[1]);
        assert!(v[2].is_nan());
        let mut v = [1e6, -1e6, f64::NAN];
        tanh_f64(&mut v);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], -1.0);
        assert!(v[2].is_nan());
    }

    #[test]
    fn f32_kernels_stay_within_loose_bound() {
        let mut worst_s = 0.0f32;
        let mut worst_t = 0.0f32;
        for i in -3000..=3000 {
            let x = i as f32 * 0.01;
            let mut v = [x];
            sigmoid_f32(&mut v);
            worst_s = worst_s.max((v[0] - 1.0 / (1.0 + (-f64::from(x)).exp()) as f32).abs());
            let mut v = [x];
            tanh_f32(&mut v);
            worst_t = worst_t.max((v[0] - f64::from(x).tanh() as f32).abs());
        }
        assert!(worst_s < 2e-6, "f32 sigmoid drift {worst_s}");
        assert!(worst_t < 2e-6, "f32 tanh drift {worst_t}");
        assert!((tanh1_f32(0.5) - 0.5f32.tanh()).abs() < 2e-6);
    }
}
