//! Dense linear-algebra substrate for the `evfad` workspace.
//!
//! The paper's stack is built on NumPy; this crate provides the equivalent
//! primitives needed by the neural-network substrate ([`evfad-nn`]) and the
//! anomaly-detection pipeline: a row-major [`Matrix`] of `f64` with
//! cache-aware multiplication, elementwise combinators, weight
//! initialisers, and the descriptive statistics (percentiles, moments) used
//! by the reconstruction-error thresholding rule.
//!
//! Large kernels execute on a deterministic worker pool (see [`parallel`]):
//! outputs are partitioned into disjoint row blocks, so results are bitwise
//! identical to serial execution for every thread count.
//!
//! # Examples
//!
//! ```
//! use evfad_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```
//!
//! [`evfad-nn`]: https://example.com/evfad

// `deny` rather than `forbid`: the one audited exception is the lifetime
// erasure in `parallel::run_scoped`, which hands stack-borrowing jobs to the
// persistent worker pool and joins them before returning.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod error;
pub mod fastpath;
mod init;
pub mod kernels;
mod matrix;
pub mod parallel;
pub mod quant;
pub mod solve;
pub mod stats;
pub mod vmath;

pub use alloc::{alloc_stats, AllocStats};
pub use error::{ShapeError, TensorResult};
pub use init::{glorot_limit, Initializer};
pub use kernels::{MatMut, MatRef};
pub use matrix::Matrix;
