//! Deterministic parallel execution for the dense kernels.
//!
//! The hot kernels in [`crate::Matrix`] (`matmul`, `matmul_transpose`,
//! `transpose_matmul`, `transpose`, and the `zip_map`-style elementwise
//! family) partition their **output** into disjoint, contiguous row blocks
//! and hand each block to a lazily-initialised process-wide worker pool.
//! Every block runs the *same inner loop in the same order* as the serial
//! kernel, and no two blocks share an output element, so the result is
//! **bitwise identical** to the serial computation for every thread count —
//! floating-point summation order never changes, only who computes which
//! rows.
//!
//! Small operations stay serial: a dispatch only goes parallel when its
//! estimated FLOP count reaches [`serial_flop_threshold`] (tunable via
//! [`set_serial_flop_threshold`]) and the effective thread count
//! ([`threads`], tunable via [`set_threads`], `0` = one per CPU) is at
//! least two.
//!
//! The pool itself is plain `std` — a shared injector queue drained by
//! long-lived workers, plus the calling thread, which participates in the
//! work instead of blocking idle. Worker threads are started on first
//! parallel dispatch and live for the rest of the process.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Requested thread count; `0` means "one per available CPU".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum estimated FLOPs before a kernel goes parallel.
///
/// The default corresponds to a 64x64x64 GEMM — below that, enqueue and
/// wake-up latency eats the gain.
static SERIAL_FLOP_THRESHOLD: AtomicUsize = AtomicUsize::new(64 * 64 * 64);

/// Sets the thread count used by parallel kernels (`0` = one per CPU).
///
/// Affects how many row blocks future dispatches are split into; results
/// are bitwise identical for every setting. Safe to call at any time,
/// including after the pool has started.
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// Effective thread count for the next parallel dispatch.
pub fn threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        configured
    } else {
        available_cpus()
    }
}

/// Sets the serial-fallback threshold in estimated FLOPs.
pub fn set_serial_flop_threshold(flops: usize) {
    SERIAL_FLOP_THRESHOLD.store(flops, Ordering::Relaxed);
}

/// Current serial-fallback threshold in estimated FLOPs.
pub fn serial_flop_threshold() -> usize {
    SERIAL_FLOP_THRESHOLD.load(Ordering::Relaxed)
}

fn available_cpus() -> usize {
    // `available_parallelism` is a syscall; cache it — the hot kernels
    // consult the thread count on every dispatch.
    static CPUS: OnceLock<usize> = OnceLock::new();
    *CPUS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Injector {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl Injector {
    fn push(&self, job: Job) {
        self.queue.lock().expect("injector lock").push_back(job);
        self.ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("injector lock").pop_front()
    }
}

struct Pool {
    injector: Arc<Injector>,
    #[allow(dead_code)]
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Starts (on first call) and returns the process-wide worker pool.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        // The calling thread participates in every dispatch, so `cpus - 1`
        // workers saturate the machine. Capped to keep a huge box from
        // spawning hundreds of mostly-idle threads.
        let workers = available_cpus().saturating_sub(1).min(63);
        for w in 0..workers {
            let injector = Arc::clone(&injector);
            std::thread::Builder::new()
                .name(format!("evfad-par-{w}"))
                .spawn(move || worker_loop(&injector))
                .expect("spawn parallel worker");
        }
        Pool { injector, workers }
    })
}

fn worker_loop(injector: &Injector) {
    loop {
        let mut queue = injector.queue.lock().expect("injector lock");
        loop {
            if let Some(job) = queue.pop_front() {
                drop(queue);
                job();
                break;
            }
            queue = injector.ready.wait(queue).expect("injector wait");
        }
    }
}

/// Completion latch for one dispatch: counts outstanding blocks and records
/// whether any of them panicked.
struct Latch {
    remaining: AtomicUsize,
    poisoned: AtomicBool,
    done: Mutex<bool>,
    all_done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            poisoned: AtomicBool::new(false),
            done: Mutex::new(false),
            all_done: Condvar::new(),
        }
    }

    fn complete_one(&self, panicked: bool) {
        if panicked {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().expect("latch lock") = true;
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("latch lock");
        while !*done {
            done = self.all_done.wait(done).expect("latch wait");
        }
    }
}

/// Runs `kernel(row_start, row_end, block)` over disjoint, contiguous row
/// blocks of `out`, in parallel when the work is large enough.
///
/// `out` must hold exactly `out_rows * out_cols` elements; each block it is
/// split into covers rows `row_start..row_end`. The serial path invokes the
/// kernel once over the full range, so parallel and serial execute the same
/// per-row code — combined with disjoint blocks, that makes the output
/// bitwise independent of the thread count.
pub(crate) fn row_partitioned<K>(
    estimated_flops: usize,
    out: &mut [f64],
    out_rows: usize,
    out_cols: usize,
    kernel: K,
) where
    K: Fn(usize, usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(out.len(), out_rows * out_cols);
    // Cheap gates first: the threshold test keeps small dispatches off the
    // atomics/thread-count lookups entirely.
    if estimated_flops < serial_flop_threshold() || out_rows < 2 {
        kernel(0, out_rows, out);
        return;
    }
    let threads = threads();
    if threads < 2 {
        kernel(0, out_rows, out);
        return;
    }

    // Balanced contiguous split: the first `rows % blocks` blocks get one
    // extra row. Block boundaries depend only on (out_rows, blocks), never
    // on scheduling.
    let blocks = threads.min(out_rows);
    let base = out_rows / blocks;
    let extra = out_rows % blocks;

    let mut tasks: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(blocks);
    let mut rest = out;
    let mut row = 0;
    for b in 0..blocks {
        let height = base + usize::from(b < extra);
        let (chunk, tail) = rest.split_at_mut(height * out_cols);
        tasks.push((row, row + height, chunk));
        row += height;
        rest = tail;
    }

    run_scoped(tasks, &kernel);
}

/// Executes one kernel invocation per task across the pool plus the calling
/// thread, returning once every task has finished.
///
/// Panics from tasks are caught in the workers and re-raised here, so a
/// kernel bug fails the caller rather than killing a pool thread.
#[allow(unsafe_code)]
fn run_scoped<K>(tasks: Vec<(usize, usize, &mut [f64])>, kernel: &K)
where
    K: Fn(usize, usize, &mut [f64]) + Sync,
{
    let latch = Arc::new(Latch::new(tasks.len()));
    let pool = pool();

    for (row_start, row_end, chunk) in tasks {
        let latch = Arc::clone(&latch);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| kernel(row_start, row_end, chunk)));
            latch.complete_one(outcome.is_err());
        });
        // SAFETY: the job borrows `kernel` and `out` from the caller's
        // stack, but `row_partitioned` does not return until `latch.wait()`
        // has observed every job complete, so the borrows outlive every
        // use. Panics inside the job are caught before the latch fires.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        pool.injector.push(job);
    }

    // Work-conserving wait: drain the queue (our jobs or a concurrent
    // caller's) instead of blocking while the pool is busy.
    while let Some(job) = pool.injector.try_pop() {
        job();
    }
    latch.wait();

    if latch.poisoned.load(Ordering::Relaxed) {
        panic!("a parallel tensor kernel panicked");
    }
}

/// Serialises tests that touch the process-wide thread configuration.
#[cfg(test)]
pub(crate) fn test_config_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_guard() -> std::sync::MutexGuard<'static, ()> {
        test_config_guard()
    }

    #[test]
    fn serial_below_threshold() {
        let _guard = config_guard();
        let mut out = vec![0.0; 8];
        let calls = AtomicUsize::new(0);
        // A 2-row output under the FLOP threshold must take the serial
        // path and see the full range in one invocation.
        row_partitioned(1, &mut out, 2, 4, |r0, r1, block| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!((r0, r1), (0, 2));
            assert_eq!(block.len(), 8);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_covers_all_rows_exactly_once() {
        let _guard = config_guard();
        set_threads(4);
        let rows = 37;
        let cols = 3;
        let mut out = vec![0.0; rows * cols];
        row_partitioned(usize::MAX, &mut out, rows, cols, |r0, r1, block| {
            assert_eq!(block.len(), (r1 - r0) * cols);
            for (offset, v) in block.iter_mut().enumerate() {
                *v += (r0 * cols + offset) as f64;
            }
        });
        set_threads(0);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64, "row element {i} written wrongly");
        }
    }

    #[test]
    fn effective_threads_reflects_configuration() {
        let _guard = config_guard();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn threshold_is_tunable() {
        let _guard = config_guard();
        let before = serial_flop_threshold();
        set_serial_flop_threshold(10);
        assert_eq!(serial_flop_threshold(), 10);
        set_serial_flop_threshold(before);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let _guard = config_guard();
        set_threads(2);
        let result = std::panic::catch_unwind(|| {
            let mut out = vec![0.0; 64];
            row_partitioned(usize::MAX, &mut out, 64, 1, |r0, _r1, _block| {
                if r0 > 0 {
                    panic!("boom");
                }
            });
        });
        set_threads(0);
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
