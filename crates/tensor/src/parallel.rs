//! Deterministic parallel execution for the dense kernels.
//!
//! The hot kernels in [`crate::Matrix`] (`matmul`, `matmul_transpose`,
//! `transpose_matmul`, `transpose`, and the `zip_map`-style elementwise
//! family) partition their **output** into disjoint, contiguous row blocks
//! and hand each block to a lazily-initialised process-wide worker pool.
//! Every block runs the *same inner loop in the same order* as the serial
//! kernel, and no two blocks share an output element, so the result is
//! **bitwise identical** to the serial computation for every thread count —
//! floating-point summation order never changes, only who computes which
//! rows.
//!
//! Small operations stay serial: a dispatch only goes parallel when its
//! estimated FLOP count reaches [`serial_flop_threshold`] (tunable via
//! [`set_serial_flop_threshold`]) and the effective thread count
//! ([`threads`], tunable via [`set_threads`], `0` = one per CPU) is at
//! least two.
//!
//! The pool itself is plain `std` — a shared injector queue drained by
//! long-lived workers, plus the calling thread, which participates in the
//! work instead of blocking idle. Worker threads are started on first
//! parallel dispatch and live for the rest of the process.
//!
//! Beyond the row-partitioned kernels, [`distribute`] exposes the same
//! pool for *heterogeneous* work units (e.g. the federated scale engine's
//! edge-shard folds): disjoint slots, contiguous chunks, each chunk
//! processed strictly in index order. On a machine with fewer CPUs than
//! requested chunks the calling thread simply drains the queue itself —
//! oversubscription is deterministic by construction, never a fallback.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Requested thread count; `0` means "one per available CPU".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum estimated FLOPs before a kernel goes parallel.
///
/// The default corresponds to a 64x64x64 GEMM — below that, enqueue and
/// wake-up latency eats the gain.
static SERIAL_FLOP_THRESHOLD: AtomicUsize = AtomicUsize::new(64 * 64 * 64);

/// Sets the thread count used by parallel kernels (`0` = one per CPU).
///
/// Affects how many row blocks future dispatches are split into; results
/// are bitwise identical for every setting. Safe to call at any time,
/// including after the pool has started.
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// Effective thread count for the next parallel dispatch.
pub fn threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        configured
    } else {
        available_cpus()
    }
}

/// Sets the serial-fallback threshold in estimated FLOPs.
pub fn set_serial_flop_threshold(flops: usize) {
    SERIAL_FLOP_THRESHOLD.store(flops, Ordering::Relaxed);
}

/// Current serial-fallback threshold in estimated FLOPs.
pub fn serial_flop_threshold() -> usize {
    SERIAL_FLOP_THRESHOLD.load(Ordering::Relaxed)
}

fn available_cpus() -> usize {
    // `available_parallelism` is a syscall; cache it — the hot kernels
    // consult the thread count on every dispatch.
    static CPUS: OnceLock<usize> = OnceLock::new();
    *CPUS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Injector {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl Injector {
    fn push(&self, job: Job) {
        self.queue.lock().expect("injector lock").push_back(job);
        self.ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("injector lock").pop_front()
    }
}

struct Pool {
    injector: Arc<Injector>,
    #[allow(dead_code)]
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Starts (on first call) and returns the process-wide worker pool.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        // The calling thread participates in every dispatch, so `cpus - 1`
        // workers saturate the machine. Capped to keep a huge box from
        // spawning hundreds of mostly-idle threads.
        let workers = available_cpus().saturating_sub(1).min(63);
        for w in 0..workers {
            let injector = Arc::clone(&injector);
            std::thread::Builder::new()
                .name(format!("evfad-par-{w}"))
                .spawn(move || worker_loop(&injector))
                .expect("spawn parallel worker");
        }
        Pool { injector, workers }
    })
}

fn worker_loop(injector: &Injector) {
    loop {
        let mut queue = injector.queue.lock().expect("injector lock");
        loop {
            if let Some(job) = queue.pop_front() {
                drop(queue);
                job();
                break;
            }
            queue = injector.ready.wait(queue).expect("injector wait");
        }
    }
}

/// Completion latch for one dispatch: counts outstanding blocks and records
/// whether any of them panicked.
struct Latch {
    remaining: AtomicUsize,
    poisoned: AtomicBool,
    done: Mutex<bool>,
    all_done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            poisoned: AtomicBool::new(false),
            done: Mutex::new(false),
            all_done: Condvar::new(),
        }
    }

    fn complete_one(&self, panicked: bool) {
        if panicked {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().expect("latch lock") = true;
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("latch lock");
        while !*done {
            done = self.all_done.wait(done).expect("latch wait");
        }
    }
}

/// Runs `kernel(row_start, row_end, block)` over disjoint, contiguous row
/// blocks of `out`, in parallel when the work is large enough.
///
/// `out` must hold exactly `out_rows * out_cols` elements; each block it is
/// split into covers rows `row_start..row_end`. The serial path invokes the
/// kernel once over the full range, so parallel and serial execute the same
/// per-row code — combined with disjoint blocks, that makes the output
/// bitwise independent of the thread count.
pub(crate) fn row_partitioned<K>(
    estimated_flops: usize,
    out: &mut [f64],
    out_rows: usize,
    out_cols: usize,
    kernel: K,
) where
    K: Fn(usize, usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(out.len(), out_rows * out_cols);
    // Cheap gates first: the threshold test keeps small dispatches off the
    // atomics/thread-count lookups entirely.
    if estimated_flops < serial_flop_threshold() || out_rows < 2 {
        kernel(0, out_rows, out);
        return;
    }
    let threads = threads();
    if threads < 2 {
        kernel(0, out_rows, out);
        return;
    }

    // Balanced contiguous split: the first `rows % blocks` blocks get one
    // extra row. Block boundaries depend only on (out_rows, blocks), never
    // on scheduling.
    let blocks = threads.min(out_rows);
    let base = out_rows / blocks;
    let extra = out_rows % blocks;

    let mut tasks: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(blocks);
    let mut rest = out;
    let mut row = 0;
    for b in 0..blocks {
        let height = base + usize::from(b < extra);
        let (chunk, tail) = rest.split_at_mut(height * out_cols);
        tasks.push((row, row + height, chunk));
        row += height;
        rest = tail;
    }

    run_scoped(tasks, &kernel);
}

/// Runs `task(i, &mut slots[i])` for every slot, distributing contiguous
/// chunks of the slot range across the worker pool plus the calling
/// thread, and returns once every slot has been processed.
///
/// Guarantees callers can build on:
///
/// - **Determinism.** Chunk boundaries depend only on
///   `(slots.len(), max_tasks)` — the same balanced split
///   [`row_partitioned`] uses — and every slot is written by exactly one
///   task, so for a pure `task` the contents of `slots` afterwards are
///   identical for every thread count and scheduling order.
/// - **Bounded concurrency.** At most `min(max_tasks, slots.len())`
///   chunks exist, each processed strictly in slot-index order by a
///   single thread. A caller whose task holds transient state (e.g. a
///   streaming aggregator accumulator) therefore has at most one live
///   instance per chunk — the federated scale engine relies on this for
///   its O(model · workers) peak-memory bound.
/// - **Oversubscription is fine.** `max_tasks` may exceed the CPU count;
///   excess chunks queue and are drained by whichever thread (including
///   the caller) frees up first. Results are unaffected.
///
/// `max_tasks < 2` or fewer than two slots short-circuits to a serial
/// in-place loop with no pool interaction.
pub fn distribute<T, F>(slots: &mut [T], max_tasks: usize, task: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = slots.len();
    let chunks = max_tasks.min(n);
    if chunks < 2 {
        for (i, slot) in slots.iter_mut().enumerate() {
            task(i, slot);
        }
        return;
    }

    // Balanced contiguous split, identical in shape to `row_partitioned`:
    // the first `n % chunks` chunks get one extra slot.
    let base = n / chunks;
    let extra = n % chunks;

    let task = &task;
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
    let mut rest: &mut [T] = slots;
    let mut start = 0usize;
    for b in 0..chunks {
        let len = base + usize::from(b < extra);
        let (chunk, tail) = rest.split_at_mut(len);
        jobs.push(Box::new(move || {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                task(start + offset, slot);
            }
        }));
        start += len;
        rest = tail;
    }

    run_jobs(jobs);
}

/// Executes one kernel invocation per task across the pool plus the calling
/// thread, returning once every task has finished.
fn run_scoped<K>(tasks: Vec<(usize, usize, &mut [f64])>, kernel: &K)
where
    K: Fn(usize, usize, &mut [f64]) + Sync,
{
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = tasks
        .into_iter()
        .map(|(row_start, row_end, chunk)| {
            let job: Box<dyn FnOnce() + Send + '_> =
                Box::new(move || kernel(row_start, row_end, chunk));
            job
        })
        .collect();
    run_jobs(jobs);
}

/// Pushes every job onto the pool's injector queue, drains the queue from
/// the calling thread too, and returns once all jobs have completed.
///
/// Panics from jobs are caught in the workers and re-raised here, so a
/// task bug fails the caller rather than killing a pool thread. Nested
/// dispatches (a job that itself calls [`row_partitioned`] or
/// [`distribute`]) are safe: a waiting thread only blocks on its latch
/// after the queue is empty, so every queued job is always claimed by
/// some thread that is still making progress.
#[allow(unsafe_code)]
fn run_jobs(jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let latch = Arc::new(Latch::new(jobs.len()));
    let pool = pool();

    for job in jobs {
        let latch = Arc::clone(&latch);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            latch.complete_one(outcome.is_err());
        });
        // SAFETY: the job borrows the caller's stack (the kernel/task
        // closure and the output slots), but `run_jobs` does not return
        // until `latch.wait()` has observed every job complete, so the
        // borrows outlive every use. Panics inside the job are caught
        // before the latch fires.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        pool.injector.push(job);
    }

    // Work-conserving wait: drain the queue (our jobs or a concurrent
    // caller's) instead of blocking while the pool is busy.
    while let Some(job) = pool.injector.try_pop() {
        job();
    }
    latch.wait();

    if latch.poisoned.load(Ordering::Relaxed) {
        panic!("a parallel task panicked");
    }
}

/// Serialises tests that touch the process-wide thread configuration.
#[cfg(test)]
pub(crate) fn test_config_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_guard() -> std::sync::MutexGuard<'static, ()> {
        test_config_guard()
    }

    #[test]
    fn serial_below_threshold() {
        let _guard = config_guard();
        let mut out = vec![0.0; 8];
        let calls = AtomicUsize::new(0);
        // A 2-row output under the FLOP threshold must take the serial
        // path and see the full range in one invocation.
        row_partitioned(1, &mut out, 2, 4, |r0, r1, block| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!((r0, r1), (0, 2));
            assert_eq!(block.len(), 8);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_covers_all_rows_exactly_once() {
        let _guard = config_guard();
        set_threads(4);
        let rows = 37;
        let cols = 3;
        let mut out = vec![0.0; rows * cols];
        row_partitioned(usize::MAX, &mut out, rows, cols, |r0, r1, block| {
            assert_eq!(block.len(), (r1 - r0) * cols);
            for (offset, v) in block.iter_mut().enumerate() {
                *v += (r0 * cols + offset) as f64;
            }
        });
        set_threads(0);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64, "row element {i} written wrongly");
        }
    }

    #[test]
    fn effective_threads_reflects_configuration() {
        let _guard = config_guard();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn threshold_is_tunable() {
        let _guard = config_guard();
        let before = serial_flop_threshold();
        set_serial_flop_threshold(10);
        assert_eq!(serial_flop_threshold(), 10);
        set_serial_flop_threshold(before);
    }

    #[test]
    fn distribute_visits_every_slot_exactly_once() {
        let _guard = config_guard();
        for max_tasks in [1usize, 2, 3, 4, 8, 64] {
            let mut slots: Vec<Option<usize>> = vec![None; 37];
            distribute(&mut slots, max_tasks, |i, slot| {
                assert!(slot.is_none(), "slot {i} visited twice");
                *slot = Some(i * i);
            });
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(*slot, Some(i * i), "slot {i} at max_tasks={max_tasks}");
            }
        }
    }

    #[test]
    fn distribute_matches_serial_for_every_task_count() {
        let _guard = config_guard();
        let mut reference: Vec<u64> = vec![0; 23];
        distribute(&mut reference, 1, |i, slot| {
            *slot = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        });
        for max_tasks in [2usize, 4, 8, 16, 23, 100] {
            let mut slots: Vec<u64> = vec![0; 23];
            distribute(&mut slots, max_tasks, |i, slot| {
                *slot = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            });
            assert_eq!(slots, reference, "max_tasks={max_tasks}");
        }
    }

    #[test]
    fn distribute_handles_empty_and_single_slot() {
        let _guard = config_guard();
        let mut empty: Vec<usize> = Vec::new();
        distribute(&mut empty, 8, |_, _| unreachable!("no slots to visit"));
        let mut one = [0usize];
        distribute(&mut one, 8, |i, slot| *slot = i + 41);
        assert_eq!(one, [41]);
    }

    #[test]
    fn distribute_chunks_run_in_slot_order() {
        let _guard = config_guard();
        // Each chunk must process its slots strictly left-to-right: record
        // a per-chunk sequence number and check it increases with the
        // index inside every chunk (chunks of 10 slots at 4 tasks: sizes
        // 3,3,2,2 — boundaries are deterministic).
        let counters: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let bounds = [0usize, 3, 6, 8, 10];
        let mut slots: Vec<(usize, usize)> = vec![(0, 0); 10];
        distribute(&mut slots, 4, |i, slot| {
            let chunk = bounds.iter().take_while(|b| **b <= i).count() - 1;
            let seq = counters[chunk].fetch_add(1, Ordering::Relaxed);
            *slot = (chunk, seq);
        });
        for chunk in 0..4 {
            for (seq, i) in (bounds[chunk]..bounds[chunk + 1]).enumerate() {
                assert_eq!(slots[i], (chunk, seq), "slot {i} out of order");
            }
        }
    }

    #[test]
    fn distribute_panics_propagate_to_caller() {
        let _guard = config_guard();
        let result = std::panic::catch_unwind(|| {
            let mut slots = vec![0usize; 16];
            distribute(&mut slots, 4, |i, _slot| {
                if i == 11 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err(), "task panic must reach the caller");
    }

    #[test]
    fn panics_propagate_to_caller() {
        let _guard = config_guard();
        set_threads(2);
        let result = std::panic::catch_unwind(|| {
            let mut out = vec![0.0; 64];
            row_partitioned(usize::MAX, &mut out, 64, 1, |r0, _r1, _block| {
                if r0 > 0 {
                    panic!("boom");
                }
            });
        });
        set_threads(0);
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
