//! Throughput-grade inference kernels: blocked/packed GEMM and an int8 lane.
//!
//! Everything in [`kernels`](crate::kernels) is bitwise-pinned: training,
//! the golden fixture, and the federation all depend on one exact
//! summation order. Inference has no such obligation — a served score only
//! has to be *close enough*, and the serving tier would rather have the
//! throughput. This module is the first compute path in the workspace that
//! is allowed to reorder floating-point arithmetic, and it is fenced off
//! two ways:
//!
//! - The f64 blocked kernels only reassociate when the **`fastmath`**
//!   cargo feature is enabled. With the feature off every entry point
//!   delegates to the exact [`kernels`](crate::kernels) implementations,
//!   bitwise — so a default build can route inference through this module
//!   and still match the training-path numbers to the last bit (CI asserts
//!   exactly that).
//! - The int8 lane is *always* approximate and therefore never routed
//!   implicitly: callers opt in per model snapshot
//!   (`evfad_nn::infer::Precision::Int8`), and the bench gates assert its
//!   end-to-end error bounds.
//!
//! # Why reassociation is the speedup
//!
//! The exact kernel must produce each output element through one
//! ascending-`k` add chain, so however it is vectorised over the output
//! row, every pass has to write the partially-accumulated row back to
//! memory and re-read the full `B` panel on the next pass: its `B`
//! traffic is `k·n` elements *per row of `A`*. The blocked kernel here is
//! a classic register-tiled micro-kernel instead — an `MR × NR` (4 × 8)
//! output tile lives entirely in registers while the full `k` loop runs,
//! which is only legal because reassociation lets each element's sum be
//! produced in one pass. That buys three things the exact kernel cannot
//! have: `MR` independent accumulator chains per output column (pipelined
//! at FMA *throughput*, with no partial-row stores and reloads), explicit
//! `mul_add` contraction (Rust never fuses `a*b + c` implicitly, so the
//! bitwise kernels pay separate multiply and add issue slots — the fused
//! form rounds differently and is therefore fenced in here), and `MR×`
//! less `B` traffic, which takes the operand sweep off the
//! cache-bandwidth ceiling for serving-sized GEMMs. The result differs from the exact
//! chain only in association order, with the usual `O(k·eps·|a|·|b|)`
//! bound. `B` is packed once per model snapshot into `NR`-wide
//! column panels (the accelerator guides' shared-memory tiling pattern,
//! on the L1 instead of an SRAM tile) so the inner loop reads one
//! contiguous `NR`-vector per `k` step — legal here precisely because an
//! inference snapshot packs its weights once and reuses them for millions
//! of windows.
//!
//! # The int8 lane
//!
//! Weights are quantized per tensor with the shared EVQ8 range fold
//! ([`QuantRange`]) — the *same* fold the federated uplink codec uses —
//! and stored as one byte per coefficient. Activations stay `f32` and the
//! accumulate is `f32`. The kernel never materialises dequantized weights;
//! it uses the affine decomposition
//!
//! ```text
//! out[i][j] = Σ_k a[i][k]·(min + step·code[k][j])
//!           = min·(Σ_k a[i][k]) + step·(Σ_k a[i][k]·code[k][j])
//! ```
//!
//! so the inner loop is a pure f32 dot against the *codes* over the same
//! register-tiled panels (`NR = 16`: f32 lanes are twice as dense as
//! f64's). The byte codes are additionally mirrored as f32 at pack time —
//! integer-valued, still not dequantized — because a per-step `u8 → f32`
//! widen in the inner loop defeats vectorisation; the one-byte form
//! remains the storage/wire representation. The per-row input sum
//! `Σ_k a[i][k]` is computed once and shared by every output column. Per-output error is
//! bounded by `Σ_k |a[i][k]| · step/2` from quantization plus `f32`
//! rounding — the serving tier's bench gate measures and asserts the
//! end-to-end consequence of that bound.

use crate::kernels::{MatMut, MatRef};
use crate::quant::QuantRange;

/// Rows of `A` per register tile (independent FMA chains per column).
const MR: usize = 4;
/// Panel width for f64 operands (one register tile of output columns).
const NR: usize = 8;
/// Panel width for int8 code operands (f32 lanes are twice as dense).
const NR_Q8: usize = 16;

/// A pre-packed right-hand GEMM operand: the original row-major tensor
/// plus a register-tile panel copy.
///
/// The panel stores the operand as consecutive `NR`-wide column panels,
/// each row-major `k × w` (`panel[j0·k + kk·w + jj]` is coefficient
/// `(kk, j0 + jj)`), so the micro-kernel reads one contiguous `NR`-vector
/// per `k` step. Packing happens once per model snapshot; both layouts
/// are kept so that a build without `fastmath` can replay the exact
/// row-major kernels bitwise while a `fastmath` build reads the panels.
/// (For inference weights the duplication is a few hundred kilobytes —
/// noise next to the activations of a single batch.)
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB {
    k: usize,
    n: usize,
    /// Row-major `k × n` original (exact-path operand).
    orig: Vec<f64>,
    /// Register-tile panels (see struct docs for the layout).
    #[cfg_attr(not(feature = "fastmath"), allow(dead_code))]
    panel: Vec<f64>,
}

impl PackedB {
    /// Packs a row-major `k × n` operand.
    pub fn pack(b: MatRef<'_>) -> Self {
        let (k, n) = (b.rows(), b.cols());
        let src = b.as_slice();
        let mut panel = vec![0.0; k * n];
        let mut j0 = 0;
        while j0 < n {
            let w = NR.min(n - j0);
            let dst = &mut panel[j0 * k..j0 * k + k * w];
            for kk in 0..k {
                dst[kk * w..kk * w + w].copy_from_slice(&src[kk * n + j0..kk * n + j0 + w]);
            }
            j0 += w;
        }
        Self {
            k,
            n,
            orig: src.to_vec(),
            panel,
        }
    }

    /// Contraction depth (rows of the original operand).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width (columns of the original operand).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exact row-major operand, for bitwise delegation.
    pub fn orig_view(&self) -> MatRef<'_> {
        MatRef::new(self.k, self.n, &self.orig)
    }
}

/// Blocked core: register-tiled `MR × NR` micro-kernel. Each output tile
/// is accumulated entirely in registers across the full `k` loop — `MR`
/// independent chains per column — then written straight into the
/// row-major output, adding when `ACC`.
///
/// The store is a const-generic flag rather than a per-element epilogue
/// closure on purpose: routing every element through an `FnMut(i, j, v)`
/// costs the micro-kernel about 3× (measured on the serving shapes — the
/// abstraction blocks the writeback from vectorizing and drags the
/// surrounding tile code with it). Fused consumers run a separate
/// `O(m·n)` pass over the output instead, which is noise next to the
/// `O(m·k·n)` product.
#[cfg(feature = "fastmath")]
#[inline]
fn blocked_store<const ACC: bool>(a: MatRef<'_>, b: &PackedB, dst: &mut [f64]) {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(k, b.k, "blocked matmul inner dimensions");
    let n = b.n;
    assert_eq!(dst.len(), m * n, "blocked matmul output shape");
    let ad = a.as_slice();
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let w = NR.min(n - j0);
            let panel = &b.panel[j0 * k..j0 * k + k * w];
            if mr == MR && w == NR {
                // Hot tile: four named accumulator rows (nesting them in
                // one array spills to the stack), fixed-size inner loop,
                // explicit FMA — 32 independent chains in flight.
                let r0 = &ad[i0 * k..(i0 + 1) * k];
                let r1 = &ad[(i0 + 1) * k..(i0 + 2) * k];
                let r2 = &ad[(i0 + 2) * k..(i0 + 3) * k];
                let r3 = &ad[(i0 + 3) * k..(i0 + 4) * k];
                let mut a0 = [0.0f64; NR];
                let mut a1 = [0.0f64; NR];
                let mut a2 = [0.0f64; NR];
                let mut a3 = [0.0f64; NR];
                for ((((bw, &x0), &x1), &x2), &x3) in
                    panel.chunks_exact(NR).zip(r0).zip(r1).zip(r2).zip(r3)
                {
                    for j in 0..NR {
                        a0[j] = x0.mul_add(bw[j], a0[j]);
                        a1[j] = x1.mul_add(bw[j], a1[j]);
                        a2[j] = x2.mul_add(bw[j], a2[j]);
                        a3[j] = x3.mul_add(bw[j], a3[j]);
                    }
                }
                for (mm, am) in [&a0, &a1, &a2, &a3].into_iter().enumerate() {
                    let o = (i0 + mm) * n + j0;
                    for (s, &v) in dst[o..o + NR].iter_mut().zip(am) {
                        if ACC {
                            *s += v;
                        } else {
                            *s = v;
                        }
                    }
                }
            } else {
                // Edge tile: same accumulation order, partial extents.
                let mut acc = [[0.0f64; NR]; MR];
                for kk in 0..k {
                    let bw = &panel[kk * w..kk * w + w];
                    for (mm, am) in acc.iter_mut().enumerate().take(mr) {
                        let x = ad[(i0 + mm) * k + kk];
                        for (s, &bv) in am.iter_mut().zip(bw) {
                            *s = x.mul_add(bv, *s);
                        }
                    }
                }
                for (mm, am) in acc.iter().enumerate().take(mr) {
                    let o = (i0 + mm) * n + j0;
                    for (s, &v) in dst[o..o + w].iter_mut().zip(am.iter()) {
                        if ACC {
                            *s += v;
                        } else {
                            *s = v;
                        }
                    }
                }
            }
            j0 += w;
        }
        i0 += mr;
    }
}

/// `out = a · b`, blocked. Reassociates only under `fastmath`; otherwise
/// delegates to the exact [`kernels::matmul_into`], bitwise.
pub fn matmul_into_blocked(a: MatRef<'_>, b: &PackedB, out: MatMut<'_>) {
    #[cfg(not(feature = "fastmath"))]
    {
        crate::kernels::matmul_into(a, b.orig_view(), out);
    }
    #[cfg(feature = "fastmath")]
    {
        let mut out = out;
        assert_eq!(out.rows(), a.rows(), "blocked matmul output rows");
        assert_eq!(out.cols(), b.n, "blocked matmul output cols");
        blocked_store::<false>(a, b, out.as_mut_slice());
    }
}

/// `out += a · b`, blocked. Exact delegation rules as
/// [`matmul_into_blocked`].
pub fn matmul_acc_into_blocked(a: MatRef<'_>, b: &PackedB, out: MatMut<'_>) {
    #[cfg(not(feature = "fastmath"))]
    {
        crate::kernels::matmul_acc_into(a, b.orig_view(), out);
    }
    #[cfg(feature = "fastmath")]
    {
        let mut out = out;
        assert_eq!(out.rows(), a.rows(), "blocked matmul output rows");
        assert_eq!(out.cols(), b.n, "blocked matmul output cols");
        blocked_store::<true>(a, b, out.as_mut_slice());
    }
}

/// Fused `out = act(a · b + bias)`: one call produces the activated
/// output — the blocked product lands first, then a single `O(m·n)` pass
/// applies the row bias and activation in place (cheap next to the
/// product, and it keeps the micro-kernel closure-free).
///
/// Without `fastmath` this replays the exact three-kernel sequence
/// (`matmul_into`, `add_row_broadcast_into`, elementwise `act`) that the
/// training-path dense layer runs — bitwise identical to it.
pub fn matmul_bias_act_into_blocked(
    a: MatRef<'_>,
    b: &PackedB,
    bias: MatRef<'_>,
    act: impl Fn(f64) -> f64,
    mut out: MatMut<'_>,
) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), b.n, "bias width");
    #[cfg(not(feature = "fastmath"))]
    {
        crate::kernels::matmul_into(
            a,
            b.orig_view(),
            MatMut::new(out.rows(), out.cols(), out.as_mut_slice()),
        );
        crate::kernels::add_row_broadcast_into(
            MatMut::new(a.rows(), b.n, out.as_mut_slice()),
            bias,
        );
        for v in out.as_mut_slice() {
            *v = act(*v);
        }
    }
    #[cfg(feature = "fastmath")]
    {
        assert_eq!(out.rows(), a.rows(), "blocked matmul output rows");
        assert_eq!(out.cols(), b.n, "blocked matmul output cols");
        let n = b.n;
        let bias = bias.as_slice();
        let dst = out.as_mut_slice();
        blocked_store::<false>(a, b, dst);
        for row in dst.chunks_exact_mut(n) {
            for (v, &bv) in row.iter_mut().zip(bias) {
                *v = act(*v + bv);
            }
        }
    }
}

/// A right-hand GEMM operand quantized to int8 with the shared EVQ8 range
/// fold, packed into register-tile panels for the f32-accumulate kernels.
///
/// Codes use the same panel layout as [`PackedB`] with width `NR_Q8`
/// (16): `codes[j0·k + kk·w + jj]` is coefficient `(kk, j0 + jj)`. The
/// range parameters are carried in `f32` because the lane accumulates in
/// `f32`; `max_error` reports the f64 half-step bound of the underlying
/// fold. Intended for *finite* inference weights — non-finite
/// coefficients would already have poisoned training long before serving.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPanel {
    k: usize,
    n: usize,
    min: f32,
    step: f32,
    /// Register-tile code panels (see struct docs for the layout). This
    /// is the storage/wire representation — one byte per coefficient.
    codes: Vec<u8>,
    /// The same codes widened to f32 at pack time, identical layout: the
    /// kernel's operand. Integer-valued (0..=255), *not* dequantized —
    /// the affine decomposition still happens in the epilogue. Trades
    /// 4 bytes/coefficient of snapshot memory for a convert-free inner
    /// loop (a per-`k`-step `u8 → f32` widen defeats vectorisation).
    codes_f32: Vec<f32>,
    /// Half-step round-trip bound of the f64 fold.
    max_error: f64,
}

impl QuantizedPanel {
    /// Quantizes and packs a row-major `k × n` operand.
    pub fn quantize(b: MatRef<'_>) -> Self {
        let (k, n) = (b.rows(), b.cols());
        let src = b.as_slice();
        let range = QuantRange::from_values(src);
        let mut codes = vec![0u8; k * n];
        let mut j0 = 0;
        while j0 < n {
            let w = NR_Q8.min(n - j0);
            let dst = &mut codes[j0 * k..j0 * k + k * w];
            for kk in 0..k {
                for (jj, &v) in src[kk * n + j0..kk * n + j0 + w].iter().enumerate() {
                    dst[kk * w + jj] = range.encode(v);
                }
            }
            j0 += w;
        }
        let codes_f32 = codes.iter().map(|&c| f32::from(c)).collect();
        Self {
            k,
            n,
            min: range.min as f32,
            step: range.step as f32,
            codes,
            codes_f32,
            max_error: range.max_error(),
        }
    }

    /// Contraction depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Worst-case absolute weight round-trip error (half a quantization
    /// step).
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// Payload bytes of the packed codes (one per coefficient).
    pub fn byte_size(&self) -> usize {
        self.codes.len()
    }
}

/// Reassociated f32 sum of a row (four independent chains) — the shared
/// `Σ_k a[i][k]` term of the int8 decomposition.
#[inline]
fn row_sum_f32(a: &[f32]) -> f32 {
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    let mut ch = a.chunks_exact(4);
    for p in &mut ch {
        s0 += p[0];
        s1 += p[1];
        s2 += p[2];
        s3 += p[3];
    }
    for &v in ch.remainder() {
        s0 += v;
    }
    (s0 + s1) + (s2 + s3)
}

/// Int8 GEMM core: the same `MR`-row register-tiled micro-kernel as the
/// f64 path, `NR_Q8` columns wide, accumulating `Σ_k a·code` in f32 and
/// applying the affine decomposition in the writeback, which stores
/// straight into the row-major output (`a (rows × k) · dequant(b)`),
/// adding when `ACC`. Weights are never materialised, and the store is a
/// const flag rather than an emit closure for the same vectorization
/// reason as [`blocked_store`].
#[inline]
fn q8_store<const ACC: bool>(a: &[f32], rows: usize, b: &QuantizedPanel, dst: &mut [f32]) {
    let k = b.k;
    assert_eq!(a.len(), rows * k, "int8 matmul input shape");
    let (min, step) = (b.min, b.step);
    let n = b.n;
    assert_eq!(dst.len(), rows * n, "int8 matmul output shape");
    let mut i0 = 0;
    while i0 < rows {
        let mr = MR.min(rows - i0);
        let mut base = [0.0f32; MR];
        for (mm, bv) in base.iter_mut().enumerate().take(mr) {
            *bv = min * row_sum_f32(&a[(i0 + mm) * k..(i0 + mm + 1) * k]);
        }
        let mut j0 = 0;
        while j0 < n {
            let w = NR_Q8.min(n - j0);
            let panel = &b.codes_f32[j0 * k..j0 * k + k * w];
            if mr == MR && w == NR_Q8 {
                let r0 = &a[i0 * k..(i0 + 1) * k];
                let r1 = &a[(i0 + 1) * k..(i0 + 2) * k];
                let r2 = &a[(i0 + 2) * k..(i0 + 3) * k];
                let r3 = &a[(i0 + 3) * k..(i0 + 4) * k];
                let mut a0 = [0.0f32; NR_Q8];
                let mut a1 = [0.0f32; NR_Q8];
                let mut a2 = [0.0f32; NR_Q8];
                let mut a3 = [0.0f32; NR_Q8];
                for ((((bw, &x0), &x1), &x2), &x3) in
                    panel.chunks_exact(NR_Q8).zip(r0).zip(r1).zip(r2).zip(r3)
                {
                    for j in 0..NR_Q8 {
                        a0[j] = x0.mul_add(bw[j], a0[j]);
                        a1[j] = x1.mul_add(bw[j], a1[j]);
                        a2[j] = x2.mul_add(bw[j], a2[j]);
                        a3[j] = x3.mul_add(bw[j], a3[j]);
                    }
                }
                for (mm, am) in [&a0, &a1, &a2, &a3].into_iter().enumerate() {
                    let o = (i0 + mm) * n + j0;
                    for (s, &v) in dst[o..o + NR_Q8].iter_mut().zip(am) {
                        let val = base[mm] + step * v;
                        if ACC {
                            *s += val;
                        } else {
                            *s = val;
                        }
                    }
                }
            } else {
                let mut acc = [[0.0f32; NR_Q8]; MR];
                for kk in 0..k {
                    let cw = &panel[kk * w..kk * w + w];
                    for (mm, am) in acc.iter_mut().enumerate().take(mr) {
                        let x = a[(i0 + mm) * k + kk];
                        for (s, &c) in am.iter_mut().zip(cw) {
                            *s = x.mul_add(c, *s);
                        }
                    }
                }
                for (mm, am) in acc.iter().enumerate().take(mr) {
                    let o = (i0 + mm) * n + j0;
                    for (s, &v) in dst[o..o + w].iter_mut().zip(am.iter()) {
                        let val = base[mm] + step * v;
                        if ACC {
                            *s += val;
                        } else {
                            *s = val;
                        }
                    }
                }
            }
            j0 += w;
        }
        i0 += mr;
    }
}

/// `out = a · dequant(b)` with f32 accumulate; `a` is row-major
/// `rows × b.k()`, `out` is row-major `rows × b.n()`.
///
/// Always approximate (the int8 lane is opt-in by construction), so this
/// is **not** gated on `fastmath`.
pub fn matmul_q8_into(a: &[f32], rows: usize, b: &QuantizedPanel, out: &mut [f32]) {
    q8_store::<false>(a, rows, b, out);
}

/// `out += a · dequant(b)` with f32 accumulate.
pub fn matmul_q8_acc_into(a: &[f32], rows: usize, b: &QuantizedPanel, out: &mut [f32]) {
    q8_store::<true>(a, rows, b, out);
}

/// Fused `out = act(a · dequant(b) + bias)`, f32 accumulate; `bias` has
/// length `b.n()`.
pub fn matmul_q8_bias_act_into(
    a: &[f32],
    rows: usize,
    b: &QuantizedPanel,
    bias: &[f32],
    act: impl Fn(f32) -> f32,
    out: &mut [f32],
) {
    assert_eq!(bias.len(), b.n, "int8 bias width");
    let n = b.n;
    q8_store::<false>(a, rows, b, out);
    for row in out.chunks_exact_mut(n) {
        for (v, &bv) in row.iter_mut().zip(bias) {
            *v = act(*v + bv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Matrix {
        Matrix::from_fn(rows, cols, f)
    }

    #[test]
    fn packed_panels_tile_the_operand() {
        // 13 columns: one full NR-wide panel plus a 5-wide remainder.
        let b = mat(3, 13, |i, j| (i * 13 + j) as f64);
        let p = PackedB::pack(b.view());
        assert_eq!((p.k(), p.n()), (3, 13));
        let mut j0 = 0;
        while j0 < 13 {
            let w = NR.min(13 - j0);
            for kk in 0..3 {
                for jj in 0..w {
                    assert_eq!(p.panel[j0 * 3 + kk * w + jj], b[(kk, j0 + jj)]);
                }
            }
            j0 += w;
        }
        assert_eq!(p.orig_view().as_slice(), b.as_slice());
    }

    #[test]
    fn blocked_matmul_matches_exact_within_reassociation_bound() {
        let a = mat(7, 53, |i, j| ((i * 31 + j * 7) % 19) as f64 * 0.05 - 0.4);
        let b = mat(53, 10, |i, j| ((i * 13 + j * 3) % 23) as f64 * 0.03 - 0.3);
        let p = PackedB::pack(b.view());
        let mut exact = vec![0.0; 7 * 10];
        crate::kernels::matmul_into(a.view(), b.view(), MatMut::new(7, 10, &mut exact));
        let mut fast = vec![0.0; 7 * 10];
        matmul_into_blocked(a.view(), &p, MatMut::new(7, 10, &mut fast));
        for (x, y) in exact.iter().zip(&fast) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
        // Without the feature the path must be *bitwise* the exact kernel.
        #[cfg(not(feature = "fastmath"))]
        for (x, y) in exact.iter().zip(&fast) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_matmul_covers_full_and_edge_tiles() {
        // 9 × 19 output: two full 4-row bands plus a 1-row edge, two full
        // 8-col panels plus a 3-col edge — every micro-kernel path runs.
        let a = mat(9, 33, |i, j| ((i * 29 + j * 11) % 17) as f64 * 0.06 - 0.5);
        let b = mat(33, 19, |i, j| ((i * 7 + j * 5) % 13) as f64 * 0.04 - 0.25);
        let p = PackedB::pack(b.view());
        let mut exact = vec![0.0; 9 * 19];
        crate::kernels::matmul_into(a.view(), b.view(), MatMut::new(9, 19, &mut exact));
        let mut fast = vec![0.0; 9 * 19];
        matmul_into_blocked(a.view(), &p, MatMut::new(9, 19, &mut fast));
        for (x, y) in exact.iter().zip(&fast) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_acc_accumulates() {
        let a = mat(4, 9, |i, j| (i + j) as f64 * 0.1);
        let b = mat(9, 6, |i, j| (i as f64 - j as f64) * 0.05);
        let p = PackedB::pack(b.view());
        let mut base = vec![1.0; 4 * 6];
        matmul_acc_into_blocked(a.view(), &p, MatMut::new(4, 6, &mut base));
        let mut plain = vec![0.0; 4 * 6];
        matmul_into_blocked(a.view(), &p, MatMut::new(4, 6, &mut plain));
        for (x, y) in base.iter().zip(&plain) {
            assert!((x - (y + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_bias_act_matches_unfused_sequence() {
        let a = mat(5, 11, |i, j| ((i * 7 + j) % 13) as f64 * 0.07 - 0.4);
        let b = mat(11, 4, |i, j| ((i + 2 * j) % 9) as f64 * 0.06 - 0.2);
        let bias = mat(1, 4, |_, j| j as f64 * 0.25 - 0.5);
        let p = PackedB::pack(b.view());
        let mut fused = vec![0.0; 5 * 4];
        matmul_bias_act_into_blocked(
            a.view(),
            &p,
            bias.view(),
            |x| x.max(0.0),
            MatMut::new(5, 4, &mut fused),
        );
        let mut manual = vec![0.0; 5 * 4];
        matmul_into_blocked(a.view(), &p, MatMut::new(5, 4, &mut manual));
        crate::kernels::add_row_broadcast_into(MatMut::new(5, 4, &mut manual), bias.view());
        for v in &mut manual {
            *v = v.max(0.0);
        }
        for (x, y) in fused.iter().zip(&manual) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn int8_matmul_error_is_bounded_by_weight_quantization() {
        let a = mat(6, 40, |i, j| ((i * 17 + j * 5) % 21) as f64 * 0.04 - 0.4);
        let b = mat(40, 8, |i, j| ((i * 11 + j * 13) % 29) as f64 * 0.02 - 0.28);
        let q = QuantizedPanel::quantize(b.view());
        let a32: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
        let mut fast = vec![0.0f32; 6 * 8];
        matmul_q8_into(&a32, 6, &q, &mut fast);
        let mut exact = vec![0.0; 6 * 8];
        crate::kernels::matmul_into(a.view(), b.view(), MatMut::new(6, 8, &mut exact));
        // Per-output bound: Σ|a| · (half step) for quantization, plus
        // f32 accumulation slack.
        for i in 0..6 {
            let abs_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            let bound = abs_sum * q.max_error() + 1e-4 * (1.0 + abs_sum);
            for j in 0..8 {
                let d = (exact[i * 8 + j] - fast[i * 8 + j] as f64).abs();
                assert!(d <= bound, "({i},{j}): delta {d} > bound {bound}");
            }
        }
    }

    #[test]
    fn int8_matmul_covers_full_and_edge_tiles() {
        // 7 × 21 output: one full 4-row band plus a 3-row edge, one full
        // 16-col code panel plus a 5-col edge.
        let a = mat(7, 30, |i, j| ((i * 19 + j * 3) % 23) as f64 * 0.03 - 0.3);
        let b = mat(30, 21, |i, j| ((i * 5 + j * 7) % 27) as f64 * 0.02 - 0.26);
        let q = QuantizedPanel::quantize(b.view());
        let a32: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
        let mut fast = vec![0.0f32; 7 * 21];
        matmul_q8_into(&a32, 7, &q, &mut fast);
        let mut exact = vec![0.0; 7 * 21];
        crate::kernels::matmul_into(a.view(), b.view(), MatMut::new(7, 21, &mut exact));
        for i in 0..7 {
            let abs_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            let bound = abs_sum * q.max_error() + 1e-4 * (1.0 + abs_sum);
            for j in 0..21 {
                let d = (exact[i * 21 + j] - fast[i * 21 + j] as f64).abs();
                assert!(d <= bound, "({i},{j}): delta {d} > bound {bound}");
            }
        }
    }

    #[test]
    fn int8_acc_and_fused_variants_agree_with_plain() {
        let a = mat(3, 10, |i, j| (i + j) as f64 * 0.09 - 0.3);
        let b = mat(10, 5, |i, j| (2 * i + j) as f64 * 0.03 - 0.2);
        let q = QuantizedPanel::quantize(b.view());
        let a32: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
        let mut plain = vec![0.0f32; 15];
        matmul_q8_into(&a32, 3, &q, &mut plain);
        let mut acc = vec![0.5f32; 15];
        matmul_q8_acc_into(&a32, 3, &q, &mut acc);
        let bias = vec![0.5f32; 5];
        let mut fused = vec![0.0f32; 15];
        matmul_q8_bias_act_into(&a32, 3, &q, &bias, |x| x, &mut fused);
        for ((&p, &ac), &f) in plain.iter().zip(&acc).zip(&fused) {
            assert!((ac - (p + 0.5)).abs() < 1e-5);
            assert!((f - (p + 0.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn quantized_panel_reuses_the_shared_fold() {
        // The panel's range parameters must be exactly the shared fold's —
        // same min, same step — so the codec and the inference lane can
        // never disagree on the quantization grid.
        let b = mat(4, 4, |i, j| (i * 4 + j) as f64 * 0.35 - 2.0);
        let q = QuantizedPanel::quantize(b.view());
        let r = QuantRange::from_values(b.view().as_slice());
        assert_eq!(q.min, r.min as f32);
        assert_eq!(q.step, r.step as f32);
        assert_eq!(q.max_error(), r.max_error());
        assert_eq!(q.byte_size(), 16);
    }
}
