//! Weight initialisers.
//!
//! The paper's models are Keras `Sequential` stacks, whose kernels default
//! to Glorot-uniform initialisation. [`Initializer`] reproduces that family
//! plus the simple schemes used in tests.

use crate::matrix::Matrix;
use rand::Rng;

/// Returns the Glorot-uniform limit `sqrt(6 / (fan_in + fan_out))`.
///
/// # Examples
///
/// ```
/// let l = evfad_tensor::glorot_limit(3, 3);
/// assert!((l - 1.0).abs() < 1e-12);
/// ```
pub fn glorot_limit(fan_in: usize, fan_out: usize) -> f64 {
    (6.0 / (fan_in + fan_out) as f64).sqrt()
}

/// A strategy for filling a freshly created weight matrix.
///
/// # Examples
///
/// ```
/// use evfad_tensor::Initializer;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = Initializer::GlorotUniform.init(4, 8, &mut rng);
/// assert_eq!(w.shape(), (4, 8));
/// assert!(w.max_abs() <= evfad_tensor::glorot_limit(4, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Initializer {
    /// All zeros (used for biases).
    Zeros,
    /// Every element equal to the given constant.
    Constant(f64),
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f64,
    },
    /// Glorot/Xavier uniform: `U(-l, l)` with `l = sqrt(6/(fan_in+fan_out))`.
    ///
    /// `fan_in`/`fan_out` are taken from the matrix shape (`rows`/`cols`).
    #[default]
    GlorotUniform,
}

impl Initializer {
    /// Creates a `rows x cols` matrix filled according to the strategy.
    pub fn init(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        match self {
            Initializer::Zeros => Matrix::zeros(rows, cols),
            Initializer::Constant(c) => Matrix::filled(rows, cols, c),
            Initializer::Uniform { limit } => {
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
            }
            Initializer::GlorotUniform => {
                let l = glorot_limit(rows, cols);
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-l..=l))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Initializer::Zeros.init(3, 3, &mut rng);
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn constant_fills() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Initializer::Constant(2.5).init(2, 2, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn glorot_respects_limit() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = Initializer::GlorotUniform.init(10, 20, &mut rng);
        let l = glorot_limit(10, 20);
        assert!(m.max_abs() <= l);
        // With 200 samples the spread should actually use the range.
        assert!(m.max_abs() > l * 0.5);
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = Initializer::Uniform { limit: 0.1 }.init(5, 5, &mut rng);
        assert!(m.max_abs() <= 0.1);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = Initializer::GlorotUniform.init(4, 4, &mut StdRng::seed_from_u64(9));
        let b = Initializer::GlorotUniform.init(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn glorot_limit_formula() {
        assert!((glorot_limit(50, 200) - (6.0_f64 / 250.0).sqrt()).abs() < 1e-15);
    }
}
