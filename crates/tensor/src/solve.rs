//! Dense linear solves (LU with partial pivoting).
//!
//! Used by the classical autoregressive baseline forecaster, which fits its
//! coefficients by ordinary least squares on the normal equations.

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// Error returned when a linear solve fails.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Operand shapes are incompatible.
    Shape(ShapeError),
    /// The matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Pivot column where elimination broke down.
        pivot: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Shape(e) => write!(f, "{e}"),
            SolveError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ShapeError> for SolveError {
    fn from(e: ShapeError) -> Self {
        SolveError::Shape(e)
    }
}

/// Solves `A x = b` for square `A` using LU decomposition with partial
/// pivoting. `b` may have multiple right-hand-side columns.
///
/// # Errors
///
/// * [`SolveError::Shape`] if `A` is not square or `b` has the wrong rows;
/// * [`SolveError::Singular`] if a pivot is (numerically) zero.
///
/// # Examples
///
/// ```
/// use evfad_tensor::{solve::solve, Matrix};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
/// let b = Matrix::column_vector(&[3.0, 5.0]);
/// let x = solve(&a, &b)?;
/// assert!((x[(0, 0)] - 0.8).abs() < 1e-12);
/// assert!((x[(1, 0)] - 1.4).abs() < 1e-12);
/// # Ok::<(), evfad_tensor::solve::SolveError>(())
/// ```
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(ShapeError::new("solve", a.shape(), a.shape()).into());
    }
    if b.rows() != n {
        return Err(ShapeError::new("solve", a.shape(), b.shape()).into());
    }
    let mut lu = a.clone();
    let mut x = b.clone();
    let rhs = x.cols();

    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut best = lu[(col, col)].abs();
        for row in col + 1..n {
            let v = lu[(row, col)].abs();
            if v > best {
                best = v;
                pivot_row = row;
            }
        }
        if best < 1e-12 {
            return Err(SolveError::Singular { pivot: col });
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            for j in 0..rhs {
                let tmp = x[(col, j)];
                x[(col, j)] = x[(pivot_row, j)];
                x[(pivot_row, j)] = tmp;
            }
        }
        // Eliminate below.
        let pivot = lu[(col, col)];
        for row in col + 1..n {
            let factor = lu[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            lu[(row, col)] = 0.0;
            for j in col + 1..n {
                let v = lu[(col, j)];
                lu[(row, j)] -= factor * v;
            }
            for j in 0..rhs {
                let v = x[(col, j)];
                x[(row, j)] -= factor * v;
            }
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        for j in 0..rhs {
            let mut acc = x[(col, j)];
            for k in col + 1..n {
                acc -= lu[(col, k)] * x[(k, j)];
            }
            x[(col, j)] = acc / lu[(col, col)];
        }
    }
    Ok(x)
}

/// Solves the ridge-regularised least-squares problem
/// `min ||X w - y||² + lambda ||w||²` via the normal equations
/// `(XᵀX + lambda I) w = Xᵀ y`.
///
/// # Errors
///
/// Propagates [`SolveError`] from the underlying solve; with `lambda > 0`
/// the system is positive definite and cannot be singular.
pub fn ridge_regression(x: &Matrix, y: &Matrix, lambda: f64) -> Result<Matrix, SolveError> {
    let mut gram = x.transpose_matmul(x);
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let xty = x.transpose_matmul(y);
    solve(&gram, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let x = solve(&Matrix::identity(3), &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn known_3x3_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let b = Matrix::column_vector(&[8.0, -11.0, -3.0]);
        let x = solve(&a, &b).unwrap();
        // Classic example: x = 2, y = 3, z = -1.
        assert!((x[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-12);
        assert!((x[(2, 0)] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::column_vector(&[2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::column_vector(&[1.0, 2.0]);
        assert!(matches!(solve(&a, &b), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 1);
        assert!(matches!(solve(&a, &b), Err(SolveError::Shape(_))));
        let a = Matrix::identity(2);
        let b = Matrix::zeros(3, 1);
        assert!(matches!(solve(&a, &b), Err(SolveError::Shape(_))));
    }

    #[test]
    fn solve_round_trips_with_matmul() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                5.0
            } else {
                ((i * 3 + j * 7) % 5) as f64 * 0.3
            }
        });
        let x_true = Matrix::column_vector(&[1.0, -2.0, 0.5, 3.0, -0.7]);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).unwrap();
        for i in 0..5 {
            assert!((x[(i, 0)] - x_true[(i, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn ridge_recovers_linear_coefficients() {
        // y = 2 a - 3 b, no noise, tiny lambda.
        let x = Matrix::from_fn(50, 2, |i, j| ((i * (j + 2)) % 17) as f64 * 0.1);
        let w_true = Matrix::column_vector(&[2.0, -3.0]);
        let y = x.matmul(&w_true);
        let w = ridge_regression(&x, &y, 1e-9).unwrap();
        assert!((w[(0, 0)] - 2.0).abs() < 1e-6);
        assert!((w[(1, 0)] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_fn(20, 1, |i, _| i as f64 * 0.1);
        let y = x.scale(4.0);
        let w_small = ridge_regression(&x, &y, 1e-9).unwrap()[(0, 0)];
        let w_big = ridge_regression(&x, &y, 100.0).unwrap()[(0, 0)];
        assert!(w_big.abs() < w_small.abs());
    }
}
