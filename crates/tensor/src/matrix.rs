//! Row-major dense matrix of `f64`.

use crate::error::{ShapeError, TensorResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the single tensor type used throughout the workspace; vectors
/// are represented as `1 x n` or `n x 1` matrices, and batched sequence data
/// as one matrix per timestep.
///
/// Shape-mismatched operations **panic** in the operator forms (`+`, `-`,
/// [`Matrix::matmul`]) — this matches the workspace's internal invariant that
/// all shapes are decided at model-construction time. Fallible `checked_*`
/// variants are provided for boundary code.
///
/// # Examples
///
/// ```
/// use evfad_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
/// let b = a.transpose();
/// assert_eq!(b.shape(), (3, 1));
/// assert_eq!(a.matmul(&b)[(0, 0)], 14.0);
/// ```
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

// Manual impl so that clones hit the allocation counters (see `alloc_stats`);
// `clone` of a matrix is a fresh heap buffer like any constructor.
impl Clone for Matrix {
    fn clone(&self) -> Self {
        crate::alloc::record_alloc(self.data.len());
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = evfad_tensor::Matrix::zeros(2, 3);
    /// assert_eq!(m.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        crate::alloc::record_alloc(rows * cols);
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot form a {rows}x{cols} matrix",
            data.len()
        );
        crate::alloc::record_alloc(data.len());
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        crate::alloc::record_alloc(data.len());
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        crate::alloc::record_alloc(data.len());
        Self { rows, cols, data }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one column into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, col)]).collect()
    }

    /// Iterator over rows as slices.
    ///
    /// Degenerate shapes behave like indexing: a `rows x 0` matrix yields
    /// `rows` empty slices (not zero rows), and a `0 x cols` matrix yields
    /// nothing.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        let cols = self.cols;
        (0..self.rows).map(move |i| &self.data[i * cols..(i + 1) * cols])
    }

    /// Matrix product `self * rhs` using a cache-friendly i-k-j loop order.
    ///
    /// Large products are row-partitioned across the [`crate::parallel`]
    /// worker pool; the result is bitwise identical to serial execution.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.checked_matmul(rhs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Shape-checked matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn checked_matmul(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let flops = self.rows * self.cols * n;
        crate::parallel::row_partitioned(flops, &mut out.data, self.rows, n, |r0, r1, block| {
            for (bi, i) in (r0..r1).enumerate() {
                let out_row = &mut block[bi * n..(bi + 1) * n];
                let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
                for (k, &a) in lhs_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[k * n..(k + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                        *o += a * b;
                    }
                }
            }
        });
        Ok(out)
    }

    /// `self * rhs^T` without materialising the transpose.
    ///
    /// Large products are row-partitioned across the [`crate::parallel`]
    /// worker pool; the result is bitwise identical to serial execution.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose: {}x{} vs {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let n = rhs.rows;
        let flops = self.rows * n * self.cols;
        crate::parallel::row_partitioned(flops, &mut out.data, self.rows, n, |r0, r1, block| {
            for (bi, i) in (r0..r1).enumerate() {
                let a = self.row(i);
                let out_row = &mut block[bi * n..(bi + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b = rhs.row(j);
                    let mut acc = 0.0;
                    for (x, y) in a.iter().zip(b.iter()) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// `self^T * rhs` without materialising the transpose.
    ///
    /// Large products are row-partitioned across the [`crate::parallel`]
    /// worker pool. Every output row accumulates over `k` in ascending
    /// order exactly as the serial kernel does, so the result is bitwise
    /// identical to serial execution.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transpose_matmul: {}x{} vs {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let n = rhs.cols;
        let flops = self.rows * self.cols * n;
        crate::parallel::row_partitioned(flops, &mut out.data, self.cols, n, |r0, r1, block| {
            for k in 0..self.rows {
                let a = &self.row(k)[r0..r1];
                let b = rhs.row(k);
                for (bi, &ai) in a.iter().enumerate() {
                    if ai == 0.0 {
                        continue;
                    }
                    let out_row = &mut block[bi * n..(bi + 1) * n];
                    for (o, &bj) in out_row.iter_mut().zip(b.iter()) {
                        *o += ai * bj;
                    }
                }
            }
        });
        out
    }

    /// Returns the transpose of the matrix.
    ///
    /// Large matrices gather their output rows in parallel; transposition
    /// is a pure permutation, so the result is identical for every thread
    /// count.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let work = self.rows * self.cols;
        crate::parallel::row_partitioned(
            work,
            &mut out.data,
            self.cols,
            self.rows,
            |r0, r1, block| {
                for (bi, j) in (r0..r1).enumerate() {
                    let out_row = &mut block[bi * self.rows..(bi + 1) * self.rows];
                    for (i, o) in out_row.iter_mut().enumerate() {
                        *o = self.data[i * self.cols + j];
                    }
                }
            },
        );
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    ///
    /// Large matrices are chunk-partitioned across the [`crate::parallel`]
    /// worker pool; `f` is applied to each element independently, so the
    /// result is identical for every thread count.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        let len = self.data.len();
        crate::alloc::record_alloc(len);
        let mut out = Matrix {
            rows: self.rows,
            cols: self.cols,
            data: vec![0.0; len],
        };
        crate::parallel::row_partitioned(len, &mut out.data, len, 1, |r0, r1, block| {
            for (o, &x) in block.iter_mut().zip(self.data[r0..r1].iter()) {
                *o = f(x);
            }
        });
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two equally-shaped matrices elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64 + Sync) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shape mismatch");
        let len = self.data.len();
        crate::alloc::record_alloc(len);
        let mut out = Matrix {
            rows: self.rows,
            cols: self.cols,
            data: vec![0.0; len],
        };
        crate::parallel::row_partitioned(len, &mut out.data, len, 1, |r0, r1, block| {
            let lhs = &self.data[r0..r1];
            let rhs = &rhs.data[r0..r1];
            for (o, (&a, &b)) in block.iter_mut().zip(lhs.iter().zip(rhs.iter())) {
                *o = f(a, b);
            }
        });
        out
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `rhs`, scaled by `alpha`, into `self` (`self += alpha * rhs`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Adds a `1 x cols` row vector to every row (broadcast add).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &b) in out.row_mut(i).iter_mut().zip(bias.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Sums each column into a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for i in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(i).iter()) {
                *o += x;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm (square root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element. Returns `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Horizontally concatenates `self` and `rhs` (`[self | rhs]`).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Vertically concatenates `self` on top of `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "vstack col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        crate::alloc::record_alloc(data.len());
        Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copies columns `range.start..range.end` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(range.end <= self.cols, "column range out of bounds");
        let width = range.end - range.start;
        let mut out = Matrix::zeros(self.rows, width);
        for i in 0..self.rows {
            out.row_mut(i)
                .copy_from_slice(&self.row(i)[range.start..range.end]);
        }
        out
    }

    /// Copies rows `range.start..range.end` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(range.end <= self.rows, "row range out of bounds");
        let data = self.data[range.start * self.cols..range.end * self.cols].to_vec();
        crate::alloc::record_alloc(data.len());
        Matrix {
            rows: range.end - range.start,
            cols: self.cols,
            data,
        }
    }

    /// Returns `true` if every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Borrows the whole matrix as a [`crate::kernels::MatRef`] view.
    pub fn view(&self) -> crate::kernels::MatRef<'_> {
        crate::kernels::MatRef::new(self.rows, self.cols, &self.data)
    }

    /// Mutably borrows the whole matrix as a [`crate::kernels::MatMut`]
    /// view, for use as a kernel output.
    pub fn view_mut(&mut self) -> crate::kernels::MatMut<'_> {
        crate::kernels::MatMut::new(self.rows, self.cols, &mut self.data)
    }

    /// Borrows a contiguous row range as a [`crate::kernels::MatRef`] view
    /// without copying (rows are contiguous in row-major storage).
    ///
    /// This is how the recurrent layers address the `W_x` / `W_h` blocks of
    /// a combined `(I+H) x 4H` kernel without materialising the split.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn rows_view(&self, range: std::ops::Range<usize>) -> crate::kernels::MatRef<'_> {
        assert!(range.end <= self.rows, "row range out of bounds");
        crate::kernels::MatRef::new(
            range.end - range.start,
            self.cols,
            &self.data[range.start * self.cols..range.end * self.cols],
        )
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs);
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{}) [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for (j, v) in self.row(i).iter().take(8).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn checked_matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.checked_matmul(&b).is_err());
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64 * 0.3 - 1.0);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f64) - (j as f64) * 0.7);
        let fast = a.matmul_transpose(&b);
        let slow = a.matmul(&b.transpose());
        for i in 0..3 {
            for j in 0..4 {
                assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |i, j| (i + j) as f64 * 0.1);
        let b = Matrix::from_fn(5, 4, |i, j| (i as f64 * j as f64) - 2.0);
        let fast = a.transpose_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for i in 0..3 {
            for j in 0..4 {
                assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_fn(3, 7, |i, j| (i * 13 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |i, j| (i * j) as f64 + 1.0);
        let c = &(&a + &b) - &b;
        for i in 0..2 {
            for j in 0..2 {
                assert!((c[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn broadcast_bias_adds_per_row() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y, Matrix::from_rows(&[vec![11.0, 22.0], vec![13.0, 24.0]]));
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(x.sum_rows(), Matrix::row_vector(&[9.0, 12.0]));
    }

    #[test]
    fn hstack_vstack_shapes_and_content() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
        let h = a.hstack(&b);
        assert_eq!(h, Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]));
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.column(0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_cols_and_rows() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c = m.slice_cols(1..3);
        assert_eq!(c.shape(), (4, 2));
        assert_eq!(c[(2, 0)], 9.0);
        let r = m.slice_rows(2..4);
        assert_eq!(r.shape(), (2, 4));
        assert_eq!(r[(0, 0)], 8.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a, Matrix::filled(2, 2, 7.0));
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_rows(&[vec![2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![4.0, 5.0]]);
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[vec![8.0, 15.0]]));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_fn(3, 2, |i, j| i as f64 - j as f64 * 0.5);
        let json = serde_json::to_string(&m).expect("serialize");
        let back: Matrix = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(m, back);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_panics_on_mismatch() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix(1x1)"));
    }

    #[test]
    fn max_abs_and_mean() {
        let m = Matrix::from_rows(&[vec![-4.0, 1.0], vec![2.0, 1.0]]);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn iter_rows_zero_cols_yields_each_empty_row() {
        let m = Matrix::zeros(3, 0);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3, "a 3x0 matrix has three (empty) rows");
        assert!(rows.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn iter_rows_zero_rows_yields_nothing() {
        let m = Matrix::zeros(0, 5);
        assert_eq!(m.iter_rows().count(), 0);
    }

    #[test]
    fn iter_rows_matches_row_indexing() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        for (i, row) in m.iter_rows().enumerate() {
            assert_eq!(row, m.row(i));
        }
        assert_eq!(m.iter_rows().count(), m.rows());
    }

    #[test]
    fn sum_rows_degenerate_shapes() {
        assert_eq!(Matrix::zeros(3, 0).sum_rows().shape(), (1, 0));
        let z = Matrix::zeros(0, 4).sum_rows();
        assert_eq!(z.shape(), (1, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transpose_degenerate_shapes() {
        assert_eq!(Matrix::zeros(3, 0).transpose().shape(), (0, 3));
        assert_eq!(Matrix::zeros(0, 4).transpose().shape(), (4, 0));
        assert_eq!(Matrix::zeros(0, 0).transpose().shape(), (0, 0));
    }

    #[test]
    fn matmul_parallel_matches_serial_bitwise() {
        use crate::parallel;
        let _guard = parallel::test_config_guard();
        // Force both paths regardless of machine size: threshold 0 makes
        // every dispatch eligible, threads=1 forces serial.
        let a = Matrix::from_fn(33, 17, |i, j| ((i * 31 + j * 7) as f64).sin());
        let b = Matrix::from_fn(17, 29, |i, j| ((i * 13 + j * 3) as f64).cos());
        let c = Matrix::from_fn(33, 29, |i, j| ((i * 5 + j * 11) as f64).sin());
        let before = parallel::serial_flop_threshold();
        parallel::set_threads(1);
        let serial = a.matmul(&b);
        let serial_t = a.transpose_matmul(&c);
        let serial_mt = a.matmul_transpose(&Matrix::from_fn(21, 17, |i, j| (i + j) as f64));
        parallel::set_serial_flop_threshold(0);
        parallel::set_threads(4);
        let par = a.matmul(&b);
        let par_t = a.transpose_matmul(&c);
        let par_mt = a.matmul_transpose(&Matrix::from_fn(21, 17, |i, j| (i + j) as f64));
        parallel::set_threads(0);
        parallel::set_serial_flop_threshold(before);
        assert_eq!(
            serial.as_slice(),
            par.as_slice(),
            "matmul must be bitwise stable"
        );
        assert_eq!(serial_t.as_slice(), par_t.as_slice());
        assert_eq!(serial_mt.as_slice(), par_mt.as_slice());
    }
}
