//! Descriptive statistics used across the workspace.
//!
//! The anomaly detector thresholds reconstruction errors at the 98th
//! percentile of the training distribution (paper §II-B); [`percentile`]
//! implements the linear-interpolation quantile estimator (NumPy's default,
//! which the paper's Python implementation relies on).

/// Arithmetic mean. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(evfad_tensor::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance. Returns `0.0` for slices shorter than 1.
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Median via [`percentile`] at `p = 50`.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Median absolute deviation (MAD) about the median.
///
/// Used by the MAD-style anomaly rules referenced in the paper's related
/// work and exposed for the ablation detectors.
pub fn median_abs_deviation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = median(values);
    let dev: Vec<f64> = values.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Linear-interpolation percentile (NumPy `percentile` default method).
///
/// `p` is clamped to `[0, 100]`. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// use evfad_tensor::stats::percentile;
///
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 0.0), 1.0);
/// assert_eq!(percentile(&v, 100.0), 4.0);
/// assert_eq!(percentile(&v, 50.0), 2.5);
/// ```
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum of a slice. Returns `f64::INFINITY` for an empty slice.
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice. Returns `f64::NEG_INFINITY` for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Pearson correlation between two equal-length slices.
///
/// Returns `0.0` when either input has zero variance or the lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn std_dev_known() {
        // Population std of [2, 4, 4, 4, 5, 5, 7, 9] is 2.
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 25.0), 15.0);
        assert_eq!(percentile(&v, 75.0), 25.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [30.0, 10.0, 20.0];
        assert_eq!(percentile(&v, 50.0), 20.0);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let v = [1.0, 2.0];
        assert_eq!(percentile(&v, -5.0), 1.0);
        assert_eq!(percentile(&v, 150.0), 2.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 98.0), 42.0);
    }

    #[test]
    fn percentile_98_matches_numpy() {
        // numpy.percentile(range(100), 98) == 97.02
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!((percentile(&v, 98.0) - 97.02).abs() < 1e-9);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn mad_known() {
        // values [1,1,2,2,4,6,9]: median 2, deviations [1,1,0,0,2,4,7], MAD 1.
        let v = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(median_abs_deviation(&v), 1.0);
    }

    #[test]
    fn min_max_edges() {
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(min(&[2.0, -1.0]), -1.0);
        assert_eq!(max(&[2.0, -1.0]), 2.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }
}
