//! Always-on matrix-allocation accounting.
//!
//! Every [`Matrix`](crate::Matrix) construction that obtains a fresh backing
//! buffer (constructors, `clone`, and the allocating combinators such as
//! `map`/`zip_map`) bumps a pair of process-wide atomic counters. The
//! counters are monotonic; callers measure a region of interest by taking a
//! snapshot before and after and diffing (see [`AllocStats::since`]).
//!
//! The counters exist so the test-suite and the `bench_train_step` binary
//! can *enforce* allocation behaviour — e.g. that a warm-workspace LSTM
//! train step performs O(1) matrix allocations in the sequence length —
//! rather than merely hoping the hot path stays allocation-free. Relaxed
//! atomics keep the overhead to a couple of nanoseconds per construction,
//! negligible next to the buffer zeroing itself.

use std::sync::atomic::{AtomicU64, Ordering};

static MATRICES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide matrix-allocation counters.
///
/// # Examples
///
/// ```
/// use evfad_tensor::{alloc_stats, Matrix};
///
/// let before = alloc_stats();
/// let _m = Matrix::zeros(8, 8);
/// let delta = alloc_stats().since(&before);
/// assert!(delta.matrices >= 1);
/// assert!(delta.bytes >= 8 * 8 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Number of matrix buffers allocated since process start.
    pub matrices: u64,
    /// Total bytes of `f64` payload those buffers hold.
    pub bytes: u64,
}

impl AllocStats {
    /// Counters accumulated between `earlier` and `self`.
    ///
    /// Saturates at zero rather than wrapping if the snapshots are passed
    /// in the wrong order.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            matrices: self.matrices.saturating_sub(earlier.matrices),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Current totals of the process-wide matrix-allocation counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        matrices: MATRICES.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Records one fresh matrix buffer of `elements` `f64`s.
pub(crate) fn record_alloc(elements: usize) {
    MATRICES.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(8 * elements as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let a = alloc_stats();
        record_alloc(4);
        let b = alloc_stats();
        assert!(b.matrices > a.matrices);
        assert!(b.bytes >= a.bytes + 32);
    }

    #[test]
    fn since_saturates() {
        let late = AllocStats {
            matrices: 5,
            bytes: 40,
        };
        let early = AllocStats {
            matrices: 2,
            bytes: 16,
        };
        assert_eq!(
            late.since(&early),
            AllocStats {
                matrices: 3,
                bytes: 24
            }
        );
        assert_eq!(early.since(&late), AllocStats::default());
    }
}
