//! In-place and accumulating dense kernels over borrowed buffers.
//!
//! The allocating [`Matrix`](crate::Matrix) operations are convenient but
//! force one fresh buffer per call; a recurrent training step strings dozens
//! of them together per timestep. This module provides the same inner loops
//! over *caller-owned* storage: lightweight [`MatRef`]/[`MatMut`] views plus
//! a family of `*_into` (overwrite) and `*_acc_into` (accumulate) kernels.
//!
//! # Bitwise contract
//!
//! Every kernel here reuses the exact inner loop of its allocating
//! counterpart — same iteration order, same `a == 0.0` skip in the
//! `matmul`/`transpose_matmul` accumulation, same per-element expression —
//! and dispatches through [`crate::parallel::row_partitioned`], so results
//! are bitwise identical to the `Matrix` methods for every thread count.
//!
//! The accumulating forms continue the running sum *element by element* in
//! ascending `k` order. That gives the splitting identity the recurrent
//! layers rely on: for row-blocked operands,
//!
//! ```text
//! matmul_into(x, W_x, out); matmul_acc_into(h, W_h, out)
//!   ==  [x | h] · [W_x ; W_h]     (bitwise)
//! ```
//!
//! because the combined product accumulates over the `x` columns first and
//! the `h` columns second — exactly the order the two-call form replays.
//! Note this is *not* the same as `out += x·W_x` computed separately and
//! added afterwards (that would regroup the floating-point sums).
//!
//! # Why the unrolled loops stay bitwise
//!
//! The streaming kernels process four (or eight) `k` steps per pass with a
//! single left-associative chain per element,
//! `(((o + a0·v0) + a1·v1) + a2·v2) + a3·v3`, which performs the same
//! successive `+=` updates the reference loop would — same order, same
//! grouping. The chain is only taken when every multiplier is nonzero;
//! any exact `0.0` falls back to the reference skip loop, preserving the
//! skip's observable effects (`-0.0` signs, `0·inf`, `0·NaN`). The dot
//! kernels unroll across *output elements* instead: each accumulator is a
//! complete, untouched scalar dot product.
//!
//! # Streaming a transposed product
//!
//! `dpre · Wᵀ` can be computed either with the dot kernel
//! ([`matmul_transpose_into`]) or by staging `Wᵀ` once
//! ([`transpose_into`]) and streaming [`matmul_into`] over it. Both forms
//! add the same terms in the same ascending-`k` order; they can differ
//! only through the streaming kernel's `== 0.0` skip, and a skipped term
//! `0.0 · w` is `±0.0` for every finite `w`, which never changes an
//! accumulator that started at `+0.0`. The recurrent layers use the
//! streaming form for `dh`/`dx` (weights are finite by construction —
//! non-finite weights would already have poisoned the loss).
//!
//! # Examples
//!
//! ```
//! use evfad_tensor::{kernels, Matrix};
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
//! let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
//! let mut out = vec![0.0];
//! kernels::matmul_into(a.view(), b.view(), kernels::MatMut::new(1, 1, &mut out));
//! assert_eq!(out[0], 11.0);
//! ```

/// Borrowed, immutable row-major matrix view.
///
/// A view is just `(rows, cols, &[f64])`; it can wrap a whole
/// [`Matrix`](crate::Matrix) ([`Matrix::view`](crate::Matrix::view)), a
/// contiguous row range of one
/// ([`Matrix::rows_view`](crate::Matrix::rows_view)), or any caller-owned
/// scratch buffer.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatRef<'a> {
    /// Wraps a row-major buffer as a `rows x cols` view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot view a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major contents.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Borrow of one row.
    fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// Borrowed, mutable row-major matrix view (the output of a kernel).
#[derive(Debug)]
pub struct MatMut<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f64],
}

impl<'a> MatMut<'a> {
    /// Wraps a mutable row-major buffer as a `rows x cols` view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a mut [f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot view a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat mutable row-major contents.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data
    }
}

/// `out = a · b`, overwriting `out`.
///
/// Bitwise identical to [`Matrix::matmul`](crate::Matrix::matmul) into a
/// fresh buffer: the output is zeroed, then accumulated with the same
/// i-k-j loop (including the `a == 0.0` skip) for every thread count.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_into(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>) {
    out.data.fill(0.0);
    matmul_acc_into(a, b, out);
}

/// `out += a · b`, continuing the element sums in ascending-`k` order.
///
/// Together with [`matmul_into`] this reproduces a concatenated product
/// bitwise (see the [module docs](self) for the splitting identity).
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_acc_into(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>) {
    assert_eq!(
        a.cols, b.rows,
        "matmul_acc_into: {}x{} vs {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    assert_eq!(
        (out.rows, out.cols),
        (a.rows, b.cols),
        "matmul_acc_into: output is {}x{}, expected {}x{}",
        out.rows,
        out.cols,
        a.rows,
        b.cols
    );
    let n = b.cols;
    let flops = a.rows * a.cols * n;
    crate::parallel::row_partitioned(flops, out.data, a.rows, n, |r0, r1, block| {
        for (bi, i) in (r0..r1).enumerate() {
            let out_row = &mut block[bi * n..(bi + 1) * n];
            let lhs_row = a.row(i);
            let mut k = 0;
            // Eight k-steps per pass over the output row: the left-
            // associative chain below performs, per element, exactly the
            // eight successive `+= av * bv` updates of the reference loop,
            // in ascending-k order — bitwise identical, with 8x less
            // out-row traffic. Any exact zero falls back to the narrower
            // passes (which themselves fall back to the skipping
            // reference loop).
            while k + 8 <= lhs_row.len() {
                let av: [f64; 8] = lhs_row[k..k + 8].try_into().expect("length 8");
                if av.iter().all(|&v| v != 0.0) {
                    let (b0, b1, b2, b3) = (b.row(k), b.row(k + 1), b.row(k + 2), b.row(k + 3));
                    let (b4, b5, b6, b7) = (b.row(k + 4), b.row(k + 5), b.row(k + 6), b.row(k + 7));
                    let it = out_row
                        .iter_mut()
                        .zip(b0)
                        .zip(b1)
                        .zip(b2)
                        .zip(b3)
                        .zip(b4)
                        .zip(b5)
                        .zip(b6)
                        .zip(b7);
                    for ((((((((o, &v0), &v1), &v2), &v3), &v4), &v5), &v6), &v7) in it {
                        *o = (((((((*o + av[0] * v0) + av[1] * v1) + av[2] * v2) + av[3] * v3)
                            + av[4] * v4)
                            + av[5] * v5)
                            + av[6] * v6)
                            + av[7] * v7;
                    }
                } else {
                    acc_rows_x4(out_row, &lhs_row[k..k + 4], b, k);
                    acc_rows_x4(out_row, &lhs_row[k + 4..k + 8], b, k + 4);
                }
                k += 8;
            }
            if k + 4 <= lhs_row.len() {
                acc_rows_x4(out_row, &lhs_row[k..k + 4], b, k);
                k += 4;
            }
            acc_rows(out_row, &lhs_row[k..], b, k);
        }
    });
}

/// Four ascending k-steps into one output row: the fused left-associative
/// chain when all four multipliers are nonzero, the reference skip loop
/// otherwise.
fn acc_rows_x4(out_row: &mut [f64], lhs4: &[f64], b: MatRef<'_>, k0: usize) {
    let (a0, a1, a2, a3) = (lhs4[0], lhs4[1], lhs4[2], lhs4[3]);
    if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
        let (b0, b1, b2, b3) = (b.row(k0), b.row(k0 + 1), b.row(k0 + 2), b.row(k0 + 3));
        for ((((o, &v0), &v1), &v2), &v3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
        }
    } else {
        acc_rows(out_row, lhs4, b, k0);
    }
}

/// Reference ascending-k accumulation of `lhs[kk] * b.row(k0 + kk)` into one
/// output row, with the `== 0.0` skip (the tail/fallback of the unrolled
/// kernels).
fn acc_rows(out_row: &mut [f64], lhs: &[f64], b: MatRef<'_>, k0: usize) {
    for (kk, &av) in lhs.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let rhs_row = b.row(k0 + kk);
        for (o, &bv) in out_row.iter_mut().zip(rhs_row.iter()) {
            *o += av * bv;
        }
    }
}

/// `out = a · bᵀ`, overwriting `out` (no transpose is materialised).
///
/// Bitwise identical to
/// [`Matrix::matmul_transpose`](crate::Matrix::matmul_transpose): each
/// output element is one full dot product, assigned once.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_transpose_into(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>) {
    matmul_transpose_dispatch(a, b, out, false);
}

/// `out += a · bᵀ`: each dot product is completed, then added to `out`.
///
/// Matches `out += &a.matmul_transpose(&b)` bitwise (the full dot product
/// is formed before the single addition, exactly as the two-step form
/// does).
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_transpose_acc_into(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>) {
    matmul_transpose_dispatch(a, b, out, true);
}

fn matmul_transpose_dispatch(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>, accumulate: bool) {
    assert_eq!(
        a.cols, b.cols,
        "matmul_transpose_into: {}x{} vs {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    assert_eq!(
        (out.rows, out.cols),
        (a.rows, b.rows),
        "matmul_transpose_into: output is {}x{}, expected {}x{}",
        out.rows,
        out.cols,
        a.rows,
        b.rows
    );
    let n = b.rows;
    let flops = a.rows * n * a.cols;
    crate::parallel::row_partitioned(flops, out.data, a.rows, n, |r0, r1, block| {
        // 2x4 register tile: eight accumulator chains, each an independent
        // scalar dot product evaluated exactly as the reference single-dot
        // loop (ascending k, full dot formed before the one store/add) — the
        // tiling only amortises loads and adds instruction-level
        // parallelism across output elements.
        let rows = r1 - r0;
        let mut bi = 0;
        while bi + 2 <= rows {
            let (row0, row1) = block[bi * n..(bi + 2) * n].split_at_mut(n);
            let l0 = a.row(r0 + bi);
            let l1 = a.row(r0 + bi + 1);
            let mut j = 0;
            while j + 4 <= n {
                let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
                let (mut s00, mut s01, mut s02, mut s03) = (0.0, 0.0, 0.0, 0.0);
                let (mut s10, mut s11, mut s12, mut s13) = (0.0, 0.0, 0.0, 0.0);
                for (((((&x0, &x1), &y0), &y1), &y2), &y3) in
                    l0.iter().zip(l1).zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    s00 += x0 * y0;
                    s01 += x0 * y1;
                    s02 += x0 * y2;
                    s03 += x0 * y3;
                    s10 += x1 * y0;
                    s11 += x1 * y1;
                    s12 += x1 * y2;
                    s13 += x1 * y3;
                }
                store4(&mut row0[j..j + 4], [s00, s01, s02, s03], accumulate);
                store4(&mut row1[j..j + 4], [s10, s11, s12, s13], accumulate);
                j += 4;
            }
            dot_tail(l0, b, &mut row0[j..], j, accumulate);
            dot_tail(l1, b, &mut row1[j..], j, accumulate);
            bi += 2;
        }
        if bi < rows {
            let lhs_row = a.row(r0 + bi);
            let out_row = &mut block[bi * n..(bi + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
                let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                for ((((&x, &y0), &y1), &y2), &y3) in lhs_row.iter().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    s0 += x * y0;
                    s1 += x * y1;
                    s2 += x * y2;
                    s3 += x * y3;
                }
                store4(&mut out_row[j..j + 4], [s0, s1, s2, s3], accumulate);
                j += 4;
            }
            dot_tail(lhs_row, b, &mut out_row[j..], j, accumulate);
        }
    });
}

/// Writes (or adds) four completed dot products into the output slice.
fn store4(out: &mut [f64], sums: [f64; 4], accumulate: bool) {
    for (o, s) in out.iter_mut().zip(sums) {
        if accumulate {
            *o += s;
        } else {
            *o = s;
        }
    }
}

/// Reference single-dot loop for the trailing `< 4` output columns.
fn dot_tail(lhs_row: &[f64], b: MatRef<'_>, out: &mut [f64], j0: usize, accumulate: bool) {
    for (o, j) in out.iter_mut().zip(j0..) {
        let rhs_row = b.row(j);
        let mut acc = 0.0;
        for (x, y) in lhs_row.iter().zip(rhs_row.iter()) {
            acc += x * y;
        }
        if accumulate {
            *o += acc;
        } else {
            *o = acc;
        }
    }
}

/// `out = aᵀ · b`, overwriting `out` (no transpose is materialised).
///
/// Bitwise identical to
/// [`Matrix::transpose_matmul`](crate::Matrix::transpose_matmul) into a
/// fresh buffer.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn transpose_matmul_into(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>) {
    out.data.fill(0.0);
    transpose_matmul_acc_into(a, b, out);
}

/// `out += aᵀ · b`, continuing the element sums in ascending-`k` order
/// (`k` runs over the shared row dimension).
///
/// Splitting the operands by rows and accumulating block after block
/// reproduces the stacked product bitwise, mirroring the
/// [`matmul_acc_into`] identity.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn transpose_matmul_acc_into(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>) {
    assert_eq!(
        a.rows, b.rows,
        "transpose_matmul_acc_into: {}x{} vs {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    assert_eq!(
        (out.rows, out.cols),
        (a.cols, b.cols),
        "transpose_matmul_acc_into: output is {}x{}, expected {}x{}",
        out.rows,
        out.cols,
        a.cols,
        b.cols
    );
    let n = b.cols;
    let flops = a.rows * a.cols * n;
    crate::parallel::row_partitioned(flops, out.data, a.cols, n, |r0, r1, block| {
        // Loop order is out-row-outer (vs the reference's k-outer); every
        // output element still accumulates its `a[k][r] * b[k][j]` terms in
        // ascending-k order, and elements are independent, so the result is
        // bitwise unchanged. Four k-steps fuse into one left-associative
        // chain exactly as in `matmul_acc_into`.
        for (bi, r) in (r0..r1).enumerate() {
            let out_row = &mut block[bi * n..(bi + 1) * n];
            let mut k = 0;
            while k + 4 <= a.rows {
                let (a0, a1, a2, a3) = (
                    a.data[k * a.cols + r],
                    a.data[(k + 1) * a.cols + r],
                    a.data[(k + 2) * a.cols + r],
                    a.data[(k + 3) * a.cols + r],
                );
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    let (b0, b1, b2, b3) = (b.row(k), b.row(k + 1), b.row(k + 2), b.row(k + 3));
                    for ((((o, &v0), &v1), &v2), &v3) in
                        out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
                    }
                } else {
                    for (kk, &av) in [a0, a1, a2, a3].iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let rhs_row = b.row(k + kk);
                        for (o, &bv) in out_row.iter_mut().zip(rhs_row.iter()) {
                            *o += av * bv;
                        }
                    }
                }
                k += 4;
            }
            for kk in k..a.rows {
                let av = a.data[kk * a.cols + r];
                if av == 0.0 {
                    continue;
                }
                let rhs_row = b.row(kk);
                for (o, &bv) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    });
}

/// `out[e] = f(a[e], b[e])` elementwise over equally-shaped views.
///
/// Bitwise identical to [`Matrix::zip_map`](crate::Matrix::zip_map) into a
/// fresh buffer.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn zip_map_into(
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: MatMut<'_>,
    f: impl Fn(f64, f64) -> f64 + Sync,
) {
    assert_eq!(
        (a.rows, a.cols),
        (b.rows, b.cols),
        "zip_map_into shape mismatch"
    );
    assert_eq!(
        (a.rows, a.cols),
        (out.rows, out.cols),
        "zip_map_into output shape mismatch"
    );
    let len = out.data.len();
    crate::parallel::row_partitioned(len, out.data, len, 1, |r0, r1, block| {
        let lhs = &a.data[r0..r1];
        let rhs = &b.data[r0..r1];
        for (o, (&x, &y)) in block.iter_mut().zip(lhs.iter().zip(rhs.iter())) {
            *o = f(x, y);
        }
    });
}

/// Elementwise (Hadamard) product into `out`.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn hadamard_into(a: MatRef<'_>, b: MatRef<'_>, out: MatMut<'_>) {
    zip_map_into(a, b, out, |x, y| x * y);
}

/// Adds a `1 x cols` row vector to every row of `out`, in place.
///
/// Bitwise identical to
/// [`Matrix::add_row_broadcast`](crate::Matrix::add_row_broadcast) (which
/// clones and then performs the same per-row `+=`).
///
/// # Panics
///
/// Panics if `bias` is not `1 x out.cols()`.
pub fn add_row_broadcast_into(out: MatMut<'_>, bias: MatRef<'_>) {
    assert_eq!(bias.rows, 1, "bias must be a row vector");
    assert_eq!(bias.cols, out.cols, "bias width mismatch");
    let n = out.cols;
    for i in 0..out.rows {
        let row = &mut out.data[i * n..(i + 1) * n];
        for (o, &b) in row.iter_mut().zip(bias.data.iter()) {
            *o += b;
        }
    }
}

/// `out = aᵀ`, overwriting `out`.
///
/// A pure data movement — every output element is a copy of one input
/// element, so there is nothing floating-point about it. Used to stage a
/// transposed weight matrix once per backward pass so that `dpre · Wᵀ`
/// products can run through the streaming [`matmul_into`] kernel instead
/// of the latency-bound dot kernel (see the module docs for why the two
/// forms are bitwise identical for finite weights).
///
/// # Panics
///
/// Panics if `out` is not `a.cols x a.rows`.
pub fn transpose_into(a: MatRef<'_>, out: MatMut<'_>) {
    assert_eq!(out.rows, a.cols, "transpose rows mismatch");
    assert_eq!(out.cols, a.rows, "transpose cols mismatch");
    for i in 0..a.rows {
        let src = a.row(i);
        for (j, &v) in src.iter().enumerate() {
            out.data[j * out.cols + i] = v;
        }
    }
}

/// `out[i] = src[rows[i]]` row-wise: gathers the listed rows of `src`
/// into `out` in order.
///
/// Pure data movement (each output row is one `copy_from_slice` from the
/// source row), so the result is trivially bitwise identical to building
/// the same matrix with any allocating equivalent — e.g.
/// `Matrix::from_fn(rows.len(), src.cols(), |i, j| src[(rows[i], j)])`.
/// This is the marshalling primitive behind `BatchPlan`: a shuffled epoch
/// becomes an index permutation consumed here instead of per-sample
/// clones.
///
/// # Panics
///
/// Panics if `out.rows() != rows.len()`, if the column counts differ, or
/// if any index is out of bounds for `src`.
pub fn gather_rows_into(src: MatRef<'_>, rows: &[usize], out: MatMut<'_>) {
    assert_eq!(out.rows, rows.len(), "gather: out rows != index count");
    assert_eq!(out.cols, src.cols, "gather: column mismatch");
    for (i, &r) in rows.iter().enumerate() {
        assert!(
            r < src.rows,
            "gather: row index {r} out of bounds ({})",
            src.rows
        );
        out.data[i * out.cols..(i + 1) * out.cols].copy_from_slice(src.row(r));
    }
}

/// `out[rows[i]] = src[i]` row-wise: scatters the rows of `src` to the
/// listed positions in `out`.
///
/// The inverse data movement of [`gather_rows_into`]; rows of `out` not
/// named in `rows` are left untouched. If `rows` contains duplicates the
/// writes land in index order, so the last occurrence wins.
///
/// # Panics
///
/// Panics if `src.rows() != rows.len()`, if the column counts differ, or
/// if any index is out of bounds for `out`.
pub fn scatter_rows_into(src: MatRef<'_>, rows: &[usize], out: MatMut<'_>) {
    assert_eq!(src.rows, rows.len(), "scatter: src rows != index count");
    assert_eq!(out.cols, src.cols, "scatter: column mismatch");
    for (i, &r) in rows.iter().enumerate() {
        assert!(
            r < out.rows,
            "scatter: row index {r} out of bounds ({})",
            out.rows
        );
        out.data[r * out.cols..(r + 1) * out.cols].copy_from_slice(src.row(i));
    }
}

/// `out[i] = src[start + i * stride]` for `i in 0..out.len()`.
///
/// The strided step builder for windowed time series: a time-major step of
/// a stride-1 window batch is the contiguous slice `src[t..t + n]`, which
/// this copies with one `copy_from_slice`; other strides fall back to an
/// elementwise loop. Pure data movement, bitwise identical to the
/// equivalent `iter().step_by(stride)` collect.
///
/// # Panics
///
/// Panics if `stride == 0`, or if the last element read
/// (`start + (out.len() - 1) * stride`) is out of bounds for `src`.
pub fn gather_strided_into(src: &[f64], start: usize, stride: usize, out: &mut [f64]) {
    assert!(stride > 0, "gather_strided: stride must be nonzero");
    if out.is_empty() {
        return;
    }
    let last = start + (out.len() - 1) * stride;
    assert!(
        last < src.len(),
        "gather_strided: last index {last} out of bounds ({})",
        src.len()
    );
    if stride == 1 {
        out.copy_from_slice(&src[start..start + out.len()]);
    } else {
        for (i, o) in out.iter_mut().enumerate() {
            *o = src[start + i * stride];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn m(rows: usize, cols: usize, scale: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) as f64).sin() * scale)
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let a = m(5, 7, 1.0);
        let b = m(7, 4, 0.5);
        let mut out = vec![f64::NAN; 20];
        matmul_into(a.view(), b.view(), MatMut::new(5, 4, &mut out));
        assert_eq!(out, a.matmul(&b).as_slice());
    }

    #[test]
    fn split_matmul_reproduces_concatenated_product() {
        // [x | h] @ [Wx ; Wh] == matmul_into(x, Wx) then matmul_acc_into(h, Wh).
        let x = m(6, 3, 1.0);
        let h = m(6, 5, 0.7);
        let wx = m(3, 8, 0.9);
        let wh = m(5, 8, 1.1);
        let combined = x.hstack(&h).matmul(&wx.vstack(&wh));
        let mut out = vec![0.0; 48];
        matmul_into(x.view(), wx.view(), MatMut::new(6, 8, &mut out));
        matmul_acc_into(h.view(), wh.view(), MatMut::new(6, 8, &mut out));
        assert_eq!(out, combined.as_slice());
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = m(5, 7, 1.3);
        let mut out = vec![f64::NAN; 35];
        transpose_into(a.view(), MatMut::new(7, 5, &mut out));
        assert_eq!(out, a.transpose().as_slice());
    }

    #[test]
    fn streamed_transposed_product_matches_dot_kernel_bitwise() {
        // dpre @ W^T via the streaming kernel over a staged transpose must
        // match the dot kernel bitwise (same terms, same ascending-k order).
        let dpre = m(6, 12, 1.0);
        let w = m(4, 12, 0.9);
        let mut wt = vec![0.0; 48];
        transpose_into(w.view(), MatMut::new(12, 4, &mut wt));
        let mut via_stream = vec![f64::NAN; 24];
        matmul_into(
            dpre.view(),
            MatRef::new(12, 4, &wt),
            MatMut::new(6, 4, &mut via_stream),
        );
        let mut via_dot = vec![f64::NAN; 24];
        matmul_transpose_into(dpre.view(), w.view(), MatMut::new(6, 4, &mut via_dot));
        assert_eq!(via_stream, via_dot);
    }

    #[test]
    fn matmul_transpose_into_matches() {
        let a = m(4, 6, 1.0);
        let b = m(3, 6, 0.8);
        let mut out = vec![0.0; 12];
        matmul_transpose_into(a.view(), b.view(), MatMut::new(4, 3, &mut out));
        assert_eq!(out, a.matmul_transpose(&b).as_slice());
    }

    #[test]
    fn matmul_transpose_acc_matches_two_step_add() {
        let a = m(4, 6, 1.0);
        let b = m(3, 6, 0.8);
        let mut out_vec: Vec<f64> = (0..12).map(|i| i as f64 * 0.1).collect();
        let mut expected = Matrix::from_vec(4, 3, out_vec.clone());
        expected += &a.matmul_transpose(&b);
        matmul_transpose_acc_into(a.view(), b.view(), MatMut::new(4, 3, &mut out_vec));
        assert_eq!(out_vec, expected.as_slice());
    }

    #[test]
    fn transpose_matmul_into_matches() {
        let a = m(7, 3, 1.0);
        let b = m(7, 5, 0.6);
        let mut out = vec![1.0; 15];
        transpose_matmul_into(a.view(), b.view(), MatMut::new(3, 5, &mut out));
        assert_eq!(out, a.transpose_matmul(&b).as_slice());
    }

    #[test]
    fn row_split_transpose_matmul_accumulates_in_order() {
        // [a1 ; a2]ᵀ[b1 ; b2] == acc(a1, b1) then acc(a2, b2).
        let a1 = m(4, 3, 1.0);
        let a2 = m(2, 3, 0.5);
        let b1 = m(4, 5, 0.9);
        let b2 = m(2, 5, 1.3);
        let combined = a1.vstack(&a2).transpose_matmul(&b1.vstack(&b2));
        let mut out = vec![0.0; 15];
        transpose_matmul_acc_into(a1.view(), b1.view(), MatMut::new(3, 5, &mut out));
        transpose_matmul_acc_into(a2.view(), b2.view(), MatMut::new(3, 5, &mut out));
        assert_eq!(out, combined.as_slice());
    }

    #[test]
    fn rows_view_addresses_contiguous_blocks() {
        let w = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64);
        let top = w.rows_view(0..2);
        let bottom = w.rows_view(2..6);
        assert_eq!(top.rows(), 2);
        assert_eq!(bottom.rows(), 4);
        assert_eq!(top.as_slice()[7], 7.0);
        assert_eq!(bottom.as_slice()[0], 8.0);
    }

    #[test]
    fn hadamard_and_broadcast_match_matrix_forms() {
        let a = m(3, 4, 1.0);
        let b = m(3, 4, 0.3);
        let mut out = vec![0.0; 12];
        hadamard_into(a.view(), b.view(), MatMut::new(3, 4, &mut out));
        assert_eq!(out, a.hadamard(&b).as_slice());

        let bias = Matrix::row_vector(&[0.5, -1.0, 2.0, 0.25]);
        let mut buf = a.as_slice().to_vec();
        add_row_broadcast_into(MatMut::new(3, 4, &mut buf), bias.view());
        assert_eq!(buf, a.add_row_broadcast(&bias).as_slice());
    }

    #[test]
    fn degenerate_shapes_are_accepted() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let mut out = vec![7.0; 12];
        matmul_into(a.view(), b.view(), MatMut::new(3, 4, &mut out));
        assert!(out.iter().all(|&x| x == 0.0));

        let mut empty: Vec<f64> = Vec::new();
        matmul_into(
            Matrix::zeros(0, 4).view(),
            Matrix::zeros(4, 3).view(),
            MatMut::new(0, 3, &mut empty),
        );
    }

    #[test]
    #[should_panic(expected = "matmul_acc_into")]
    fn shape_mismatch_panics() {
        let a = m(2, 3, 1.0);
        let b = m(4, 2, 1.0);
        let mut out = vec![0.0; 4];
        matmul_acc_into(a.view(), b.view(), MatMut::new(2, 2, &mut out));
    }

    #[test]
    fn gather_rows_matches_from_fn() {
        let src = m(6, 3, 1.0);
        let idx = [4usize, 0, 4, 2];
        let mut out = vec![f64::NAN; 12];
        gather_rows_into(src.view(), &idx, MatMut::new(4, 3, &mut out));
        let expect = Matrix::from_fn(4, 3, |i, j| src[(idx[i], j)]);
        assert_eq!(out, expect.as_slice());
    }

    #[test]
    fn scatter_rows_inverts_gather_and_last_write_wins() {
        let src = m(3, 2, 1.0);
        let idx = [2usize, 0, 2];
        let mut out = vec![9.0; 8];
        scatter_rows_into(src.view(), &idx, MatMut::new(4, 2, &mut out));
        // Row 1 and 3 untouched, row 0 = src row 1, row 2 = src row 2 (last wins).
        assert_eq!(&out[2..4], &[9.0, 9.0]);
        assert_eq!(&out[6..8], &[9.0, 9.0]);
        assert_eq!(&out[0..2], src.row(1));
        assert_eq!(&out[4..6], src.row(2));
    }

    #[test]
    fn gather_strided_matches_step_by() {
        let src: Vec<f64> = (0..20).map(|i| (i as f64).cos()).collect();
        for stride in [1usize, 2, 3] {
            let mut out = vec![f64::NAN; 5];
            gather_strided_into(&src, 2, stride, &mut out);
            let expect: Vec<f64> = src[2..].iter().step_by(stride).take(5).copied().collect();
            assert_eq!(out, expect);
        }
        let mut empty: Vec<f64> = Vec::new();
        gather_strided_into(&src, 0, 1, &mut empty);
    }

    #[test]
    #[should_panic(expected = "gather: row index")]
    fn gather_out_of_bounds_panics() {
        let src = m(2, 2, 1.0);
        let mut out = vec![0.0; 2];
        gather_rows_into(src.view(), &[2], MatMut::new(1, 2, &mut out));
    }
}
