//! Property-based tests for the tensor substrate.

use evfad_tensor::{stats, Matrix};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0f64..100.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(4, 2),
    ) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn transpose_of_product_swaps(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
    ) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn fused_transpose_products_agree(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(5, 4),
    ) {
        prop_assert!(approx_eq(&a.matmul_transpose(&b), &a.matmul(&b.transpose()), 1e-9));
        let c = Matrix::from_vec(3, 6, vec![0.5; 18]);
        prop_assert!(approx_eq(&a.transpose_matmul(&c), &a.transpose().matmul(&c), 1e-9));
    }

    #[test]
    fn scale_is_linear(a in matrix_strategy(4, 4), s in -10.0f64..10.0) {
        let left = a.scale(s).sum();
        let right = a.sum() * s;
        prop_assert!((left - right).abs() < 1e-6 * (1.0 + right.abs()));
    }

    #[test]
    fn hstack_preserves_elements(a in matrix_strategy(3, 2), b in matrix_strategy(3, 5)) {
        let h = a.hstack(&b);
        prop_assert_eq!(h.shape(), (3, 7));
        prop_assert!(approx_eq(&h.slice_cols(0..2), &a, 0.0));
        prop_assert!(approx_eq(&h.slice_cols(2..7), &b, 0.0));
    }

    #[test]
    fn percentile_within_min_max(v in prop::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let q = stats::percentile(&v, p);
        prop_assert!(q >= stats::min(&v) - 1e-9);
        prop_assert!(q <= stats::max(&v) + 1e-9);
    }

    #[test]
    fn percentile_monotone_in_p(v in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let q25 = stats::percentile(&v, 25.0);
        let q50 = stats::percentile(&v, 50.0);
        let q98 = stats::percentile(&v, 98.0);
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q98 + 1e-12);
    }

    #[test]
    fn mean_within_bounds(v in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let m = stats::mean(&v);
        prop_assert!(m >= stats::min(&v) - 1e-9 && m <= stats::max(&v) + 1e-9);
    }

    #[test]
    fn sum_rows_matches_total(a in matrix_strategy(5, 3)) {
        let sr = a.sum_rows();
        prop_assert!((sr.sum() - a.sum()).abs() < 1e-9 * (1.0 + a.sum().abs()));
    }
}

// ---------------------------------------------------------------------------
// In-place kernels (`evfad_tensor::kernels`): every `*_into` / `*_acc_into`
// form must be bitwise equal to its allocating counterpart for random,
// tall/thin, and degenerate (rx0 / 0xc) shapes, at threads=1 AND threads=4.
// The golden fixture depends on this equality, so these are exact
// (`as_slice() ==`) comparisons, not approx.
// ---------------------------------------------------------------------------

use evfad_tensor::{kernels, parallel, MatMut};

/// Maps a raw draw to a dimension covering degenerate (0), small, and
/// tall/thin (31) sizes. (The vendored proptest has no union strategies.)
fn dim(raw: usize) -> usize {
    if raw == 7 {
        31
    } else {
        raw
    }
}

/// Runs `f` under forced-serial and forced-parallel dispatch and returns
/// both results. Holds a file-local guard so concurrent tests in this
/// binary don't interleave their process-wide thread-count overrides.
fn under_both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let before = parallel::serial_flop_threshold();
    parallel::set_threads(1);
    let serial = f();
    parallel::set_serial_flop_threshold(0);
    parallel::set_threads(4);
    let par = f();
    parallel::set_threads(0);
    parallel::set_serial_flop_threshold(before);
    (serial, par)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_into_bitwise_equals_matmul(
        mr in 0usize..=7,
        kr in 0usize..=7,
        nr in 0usize..=7,
        seed in 0u64..1000,
    ) {
        let (m, k, n) = (dim(mr), dim(kr), dim(nr));
        let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3 + seed as usize) as f64).sin());
        let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11 + seed as usize) as f64).cos());
        let (serial, par) = under_both_modes(|| {
            let reference = a.matmul(&b);
            let mut out = vec![f64::NAN; m * n];
            kernels::matmul_into(a.view(), b.view(), MatMut::new(m, n, &mut out));
            (reference, out)
        });
        prop_assert_eq!(serial.0.as_slice(), &serial.1[..]);
        prop_assert_eq!(par.0.as_slice(), &par.1[..]);
        prop_assert_eq!(&serial.1[..], &par.1[..]);
    }

    #[test]
    fn split_matmul_acc_reproduces_concat_bitwise(
        rr in 0usize..=7,
        ixr in 0usize..=7,
        ihr in 0usize..=7,
        nr in 0usize..=7,
    ) {
        // [x | h] @ [Wx ; Wh] == into(x, Wx) then acc_into(h, Wh), exactly.
        let (rows, ix, ih, n) = (dim(rr), dim(ixr), dim(ihr), dim(nr));
        let xm = Matrix::from_fn(rows, ix, |i, j| ((i * 13 + j) as f64).sin());
        let hm = Matrix::from_fn(rows, ih, |i, j| ((i + j * 17) as f64).cos());
        let wx = Matrix::from_fn(ix, n, |i, j| ((i * 3 + j * 7) as f64).sin());
        let wh = Matrix::from_fn(ih, n, |i, j| ((i * 11 + j) as f64).cos());
        let (serial, par) = under_both_modes(|| {
            let combined = xm.hstack(&hm).matmul(&wx.vstack(&wh));
            let mut out = vec![0.0; rows * n];
            kernels::matmul_into(xm.view(), wx.view(), MatMut::new(rows, n, &mut out));
            kernels::matmul_acc_into(hm.view(), wh.view(), MatMut::new(rows, n, &mut out));
            (combined, out)
        });
        prop_assert_eq!(serial.0.as_slice(), &serial.1[..]);
        prop_assert_eq!(par.0.as_slice(), &par.1[..]);
    }

    #[test]
    fn matmul_transpose_kernels_bitwise_equal(
        mr in 0usize..=7,
        kr in 0usize..=7,
        nr in 0usize..=7,
        seed in 0u64..1000,
    ) {
        let (m, k, n) = (dim(mr), dim(kr), dim(nr));
        let a = Matrix::from_fn(m, k, |i, j| ((i + j * 9 + seed as usize) as f64).sin());
        let b = Matrix::from_fn(n, k, |i, j| ((i * 2 + j + seed as usize) as f64).cos());
        let init = Matrix::from_fn(m, n, |i, j| ((i * 19 + j * 23) as f64).sin());
        let (serial, par) = under_both_modes(|| {
            let reference = a.matmul_transpose(&b);
            let mut acc_ref = init.clone();
            acc_ref += &reference;
            let mut out = vec![f64::NAN; m * n];
            kernels::matmul_transpose_into(a.view(), b.view(), MatMut::new(m, n, &mut out));
            let mut acc = init.as_slice().to_vec();
            kernels::matmul_transpose_acc_into(a.view(), b.view(), MatMut::new(m, n, &mut acc));
            (reference, out, acc_ref, acc)
        });
        for r in [&serial, &par] {
            prop_assert_eq!(r.0.as_slice(), &r.1[..]);
            prop_assert_eq!(r.2.as_slice(), &r.3[..]);
        }
        prop_assert_eq!(&serial.1[..], &par.1[..]);
        prop_assert_eq!(&serial.3[..], &par.3[..]);
    }

    #[test]
    fn transpose_matmul_kernels_bitwise_equal(
        k1r in 0usize..=7,
        k2r in 0usize..=7,
        mr in 0usize..=7,
        nr in 0usize..=7,
        seed in 0u64..1000,
    ) {
        let (k1, k2, m, n) = (dim(k1r), dim(k2r), dim(mr), dim(nr));
        // Row-blocked accumulation: [a1;a2]^T [b1;b2] == acc(a1,b1); acc(a2,b2).
        let a1 = Matrix::from_fn(k1, m, |i, j| ((i * 3 + j + seed as usize) as f64).sin());
        let a2 = Matrix::from_fn(k2, m, |i, j| ((i + j * 5 + seed as usize) as f64).cos());
        let b1 = Matrix::from_fn(k1, n, |i, j| ((i * 7 + j) as f64).sin());
        let b2 = Matrix::from_fn(k2, n, |i, j| ((i + j * 11) as f64).cos());
        let (serial, par) = under_both_modes(|| {
            let whole = a1.vstack(&a2).transpose_matmul(&b1.vstack(&b2));
            let single = a1.transpose_matmul(&b1);
            let mut out = vec![f64::NAN; m * n];
            kernels::transpose_matmul_into(a1.view(), b1.view(), MatMut::new(m, n, &mut out));
            let mut acc = vec![0.0; m * n];
            kernels::transpose_matmul_acc_into(a1.view(), b1.view(), MatMut::new(m, n, &mut acc));
            kernels::transpose_matmul_acc_into(a2.view(), b2.view(), MatMut::new(m, n, &mut acc));
            (whole, single, out, acc)
        });
        for r in [&serial, &par] {
            prop_assert_eq!(r.1.as_slice(), &r.2[..]);
            prop_assert_eq!(r.0.as_slice(), &r.3[..]);
        }
        prop_assert_eq!(&serial.3[..], &par.3[..]);
    }

    #[test]
    fn elementwise_kernels_bitwise_equal(
        mr in 0usize..=7,
        nr in 0usize..=7,
        seed in 0u64..1000,
    ) {
        let (m, n) = (dim(mr), dim(nr));
        let a = Matrix::from_fn(m, n, |i, j| ((i * 3 + j + seed as usize) as f64).sin());
        let b = Matrix::from_fn(m, n, |i, j| ((i + j * 7 + seed as usize) as f64).cos());
        let bias = Matrix::from_fn(1, n, |_, j| ((j + seed as usize) as f64).sin());
        let (serial, par) = under_both_modes(|| {
            let had_ref = a.hadamard(&b);
            let bias_ref = a.add_row_broadcast(&bias);
            let mut had = vec![f64::NAN; m * n];
            kernels::hadamard_into(a.view(), b.view(), MatMut::new(m, n, &mut had));
            let mut biased = a.as_slice().to_vec();
            kernels::add_row_broadcast_into(MatMut::new(m, n, &mut biased), bias.view());
            (had_ref, had, bias_ref, biased)
        });
        for r in [&serial, &par] {
            prop_assert_eq!(r.0.as_slice(), &r.1[..]);
            prop_assert_eq!(r.2.as_slice(), &r.3[..]);
        }
        prop_assert_eq!(&serial.1[..], &par.1[..]);
    }
}

// ---------------------------------------------------------------------------
// Gather/scatter kernels: the zero-copy batch pipeline assembles shuffled
// mini-batches and chunked outputs with these, so they must be bitwise equal
// to the allocating `from_fn` / indexed-copy forms they replace.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gather_rows_matches_indexed_from_fn(
        src in matrix_strategy(9, 4),
        rows in prop::collection::vec(0usize..9, 1..16),
    ) {
        let reference = Matrix::from_fn(rows.len(), 4, |i, j| src[(rows[i], j)]);
        let mut out = vec![f64::NAN; rows.len() * 4];
        kernels::gather_rows_into(src.view(), &rows, MatMut::new(rows.len(), 4, &mut out));
        prop_assert_eq!(reference.as_slice(), &out[..]);
    }

    #[test]
    fn scatter_rows_matches_indexed_writes(
        src in matrix_strategy(6, 3),
        rows in prop::collection::vec(0usize..11, 6),
    ) {
        // Reference: sequential indexed writes into a pre-filled buffer
        // (last write wins on duplicate indices, untouched rows keep their
        // old contents) — exactly the contract `scatter_rows_into` promises.
        let mut reference = Matrix::from_fn(11, 3, |i, j| (i * 3 + j) as f64);
        for (i, &r) in rows.iter().enumerate() {
            for j in 0..3 {
                reference[(r, j)] = src[(i, j)];
            }
        }
        let mut out: Vec<f64> = (0..33).map(|k| k as f64).collect();
        kernels::scatter_rows_into(src.view(), &rows, MatMut::new(11, 3, &mut out));
        prop_assert_eq!(reference.as_slice(), &out[..]);
    }

    #[test]
    fn gather_then_scatter_round_trips(
        src in matrix_strategy(8, 5),
        perm_seed in 0u64..1000,
    ) {
        // A permutation gathered out and scattered back must reproduce the
        // source exactly (the shuffle-is-an-index-permutation invariant the
        // batch planner relies on).
        let mut rows: Vec<usize> = (0..8).collect();
        let mut state = perm_seed.wrapping_add(1);
        for i in (1..rows.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rows.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut gathered = vec![f64::NAN; 8 * 5];
        kernels::gather_rows_into(src.view(), &rows, MatMut::new(8, 5, &mut gathered));
        let mut restored = vec![f64::NAN; 8 * 5];
        let g = Matrix::from_vec(8, 5, gathered);
        kernels::scatter_rows_into(g.view(), &rows, MatMut::new(8, 5, &mut restored));
        prop_assert_eq!(src.as_slice(), &restored[..]);
    }

    #[test]
    fn gather_strided_matches_step_by(
        data in prop::collection::vec(-100.0f64..100.0, 1..120),
        start_raw in 0usize..8,
        stride in 1usize..5,
        len_raw in 0usize..32,
    ) {
        let start = start_raw % data.len();
        let max_len = (data.len() - start).div_ceil(stride);
        let len = len_raw % (max_len + 1);
        let reference: Vec<f64> = data[start..].iter().step_by(stride).take(len).copied().collect();
        let mut out = vec![f64::NAN; len];
        kernels::gather_strided_into(&data, start, stride, &mut out);
        prop_assert_eq!(&reference[..], &out[..]);
    }
}
