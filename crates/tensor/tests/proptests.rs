//! Property-based tests for the tensor substrate.

use evfad_tensor::{stats, Matrix};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0f64..100.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(4, 2),
    ) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn transpose_of_product_swaps(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
    ) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn fused_transpose_products_agree(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(5, 4),
    ) {
        prop_assert!(approx_eq(&a.matmul_transpose(&b), &a.matmul(&b.transpose()), 1e-9));
        let c = Matrix::from_vec(3, 6, vec![0.5; 18]);
        prop_assert!(approx_eq(&a.transpose_matmul(&c), &a.transpose().matmul(&c), 1e-9));
    }

    #[test]
    fn scale_is_linear(a in matrix_strategy(4, 4), s in -10.0f64..10.0) {
        let left = a.scale(s).sum();
        let right = a.sum() * s;
        prop_assert!((left - right).abs() < 1e-6 * (1.0 + right.abs()));
    }

    #[test]
    fn hstack_preserves_elements(a in matrix_strategy(3, 2), b in matrix_strategy(3, 5)) {
        let h = a.hstack(&b);
        prop_assert_eq!(h.shape(), (3, 7));
        prop_assert!(approx_eq(&h.slice_cols(0..2), &a, 0.0));
        prop_assert!(approx_eq(&h.slice_cols(2..7), &b, 0.0));
    }

    #[test]
    fn percentile_within_min_max(v in prop::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let q = stats::percentile(&v, p);
        prop_assert!(q >= stats::min(&v) - 1e-9);
        prop_assert!(q <= stats::max(&v) + 1e-9);
    }

    #[test]
    fn percentile_monotone_in_p(v in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let q25 = stats::percentile(&v, 25.0);
        let q50 = stats::percentile(&v, 50.0);
        let q98 = stats::percentile(&v, 98.0);
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q98 + 1e-12);
    }

    #[test]
    fn mean_within_bounds(v in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let m = stats::mean(&v);
        prop_assert!(m >= stats::min(&v) - 1e-9 && m <= stats::max(&v) + 1e-9);
    }

    #[test]
    fn sum_rows_matches_total(a in matrix_strategy(5, 3)) {
        let sr = a.sum_rows();
        prop_assert!((sr.sum() - a.sum()).abs() < 1e-9 * (1.0 + a.sum().abs()));
    }
}
