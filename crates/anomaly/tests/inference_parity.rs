//! Tier-1 exactness gate for the serving path.
//!
//! The frozen `InferenceModel`'s f64 lane must reproduce
//! `AnomalyFilter::score` **bitwise** on a default (non-`fastmath`) build:
//! same autoencoder, same windows, same squared-error arithmetic. Under
//! `fastmath` the blocked kernels may reassociate GEMM sums, so the gate
//! relaxes to a tight tolerance.

use evfad_anomaly::{AnomalyFilter, FilterConfig};
use evfad_nn::infer::{InferenceModel, Precision};

fn sine(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 12.0).sin())
        .collect()
}

#[test]
fn frozen_f64_lane_matches_filter_score_bitwise() {
    const SEQ_LEN: usize = 12;
    let mut filter = AnomalyFilter::new(FilterConfig::fast(SEQ_LEN));
    filter.fit(&sine(400)).expect("fit");
    let mut frozen =
        InferenceModel::freeze(filter.model().expect("fitted"), Precision::F64).expect("freeze");

    let mut series = sine(90);
    series[50] += 2.5; // include an off-manifold window
    let n_wins = series.len() - SEQ_LEN + 1;

    // One batched forward over every stride-1 window.
    let mut windows = Vec::with_capacity(n_wins * SEQ_LEN);
    for w in 0..n_wins {
        windows.extend_from_slice(&series[w..w + SEQ_LEN]);
    }
    let mut recon = Vec::new();
    let (steps, feat) = frozen.forward_batch_into(&windows, n_wins, &mut recon);
    assert_eq!((steps, feat), (SEQ_LEN, 1));

    // Reference: the exact batch path, one window at a time (a single
    // window's score at its last point is that window's backward estimate).
    let mut scores = Vec::new();
    for w in 0..n_wins {
        let window = &series[w..w + SEQ_LEN];
        filter.score_into(window, &mut scores).expect("score");
        let exact = scores[SEQ_LEN - 1];
        let err = recon[w * SEQ_LEN + (SEQ_LEN - 1)] - window[SEQ_LEN - 1];
        let served = err * err;
        if cfg!(feature = "fastmath") {
            assert!(
                (served - exact).abs() < 1e-9,
                "window {w}: fastmath drift {served} vs {exact}"
            );
        } else {
            assert_eq!(
                served.to_bits(),
                exact.to_bits(),
                "window {w}: serving path broke bitwise identity: {served} vs {exact}"
            );
        }
    }
}

#[test]
fn frozen_int8_lane_score_error_is_small() {
    const SEQ_LEN: usize = 12;
    let mut filter = AnomalyFilter::new(FilterConfig::fast(SEQ_LEN));
    filter.fit(&sine(400)).expect("fit");
    let mut frozen =
        InferenceModel::freeze(filter.model().expect("fitted"), Precision::Int8).expect("freeze");

    let series = sine(90);
    let n_wins = series.len() - SEQ_LEN + 1;
    let mut windows = Vec::with_capacity(n_wins * SEQ_LEN);
    for w in 0..n_wins {
        windows.extend_from_slice(&series[w..w + SEQ_LEN]);
    }
    let mut recon = Vec::new();
    frozen.forward_batch_into(&windows, n_wins, &mut recon);

    let mut scores = Vec::new();
    let mut max_delta = 0.0f64;
    for w in 0..n_wins {
        let window = &series[w..w + SEQ_LEN];
        filter.score_into(window, &mut scores).expect("score");
        let exact = scores[SEQ_LEN - 1];
        let err = recon[w * SEQ_LEN + (SEQ_LEN - 1)] - window[SEQ_LEN - 1];
        max_delta = max_delta.max(((err * err) - exact).abs());
    }
    assert!(
        max_delta < 0.05,
        "int8 score drifted too far from exact: {max_delta}"
    );
}
