//! Allocation-regression gate for the zero-copy anomaly-scoring path.
//!
//! Reads the process-global matrix-allocation counters from
//! `evfad_tensor::alloc_stats()`, so these tests live in their own
//! integration-test binary and serialise on a local mutex.

use evfad_anomaly::{AnomalyFilter, FilterConfig, OnlineDetector};
use evfad_tensor::{alloc_stats, AllocStats};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn sine(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 12.0).sin())
        .collect()
}

fn fitted_filter() -> AnomalyFilter {
    let mut filter = AnomalyFilter::new(FilterConfig::fast(12));
    filter.fit(&sine(400)).expect("fit");
    filter
}

/// Matrix allocations of a *warm* `score` over a series with `n` points
/// (staging batch, eval arena, and reconstruction buffer already sized by
/// two prior calls at the same length).
fn warm_score_allocs(filter: &mut AnomalyFilter, n: usize) -> AllocStats {
    let series = sine(n);
    for _ in 0..2 {
        let _ = filter.score(&series).expect("score");
    }
    let before = alloc_stats();
    let _ = filter.score(&series).expect("score");
    alloc_stats().since(&before)
}

/// Warm scoring stages windows straight off the series into reused buffers,
/// so its matrix-allocation count must not grow with the series length.
/// All lengths here span multiple 256-window chunks, so the count includes
/// the full-chunk/tail staging cadence the production path really runs.
#[test]
fn warm_score_matrix_allocs_are_o1_in_series_length() {
    let _guard = GUARD.lock().unwrap();
    let mut filter = fitted_filter();
    let short = warm_score_allocs(&mut filter, 400);
    let double = warm_score_allocs(&mut filter, 700);
    let triple = warm_score_allocs(&mut filter, 1000);
    assert_eq!(
        short.matrices, double.matrices,
        "warm score matrix allocations grew with series length: {short:?} vs {double:?}"
    );
    assert_eq!(
        double.matrices, triple.matrices,
        "warm score matrix allocations grew with series length: {double:?} vs {triple:?}"
    );
}

/// One window per push, always the same shape: after warm-up the streaming
/// detector's hot path must allocate no matrices at all.
#[test]
fn warm_online_push_makes_zero_matrix_allocs() {
    let _guard = GUARD.lock().unwrap();
    let mut detector = OnlineDetector::fit(FilterConfig::fast(12), &sine(400), true).expect("fit");
    let stream = sine(80);
    for &v in &stream[..40] {
        let _ = detector.push(v);
    }
    let before = alloc_stats();
    for &v in &stream[40..] {
        let _ = detector.push(v).expect("context is warm");
    }
    let after = alloc_stats().since(&before);
    assert_eq!(
        after.matrices, 0,
        "warm OnlineDetector::push allocated matrices: {after:?}"
    );
}

/// Bulk streaming into a pre-sized decision buffer: a warm `push_all_into`
/// must make zero matrix allocations and never grow any vector — neither
/// the caller's decision buffer nor the detector's internal scratch.
#[test]
fn warm_push_all_into_makes_zero_allocs_and_zero_vec_growth() {
    let _guard = GUARD.lock().unwrap();
    let mut detector = OnlineDetector::fit(FilterConfig::fast(12), &sine(400), true).expect("fit");
    let stream = sine(120);
    let mut decisions = Vec::new();
    // Two warm-up passes size every reusable buffer for this stream length.
    detector.push_all_into(&stream, &mut decisions);
    detector.push_all_into(&stream, &mut decisions);
    let cap = decisions.capacity();
    let before = alloc_stats();
    detector.push_all_into(&stream, &mut decisions);
    let after = alloc_stats().since(&before);
    assert_eq!(
        after.matrices, 0,
        "warm push_all_into allocated matrices: {after:?}"
    );
    assert_eq!(
        decisions.capacity(),
        cap,
        "warm push_all_into grew the caller's decision buffer"
    );
    assert_eq!(decisions.len(), stream.len(), "every warm point decided");
}
