//! Property tests pinning the zero-copy scoring pipeline to the allocating
//! path it replaced.
//!
//! `AnomalyFilter::score` now stages windows straight from a
//! [`WindowedSeries`] view instead of materialising
//! `windows::reconstruction` vectors, per-window `Matrix::column_vector`s,
//! and a `Seq::from_samples` batch. These tests prove the staged batches are
//! bitwise identical to the old marshal for arbitrary series, so the golden
//! fixture (and every score downstream) is unaffected.

use evfad_nn::{Seq, SeqBuf};
use evfad_tensor::Matrix;
use evfad_timeseries::windows::{self, WindowedSeries};
use proptest::prelude::*;

/// Stages windows `first..first + count` of `ws` time-major, the way
/// `AnomalyFilter::recon_into` builds each chunk.
fn stage_chunk(ws: &WindowedSeries<'_>, first: usize, count: usize, buf: &mut SeqBuf) {
    let batch = buf.ensure(ws.seq_len(), count, 1);
    for t in 0..ws.seq_len() {
        batch
            .step_data_mut(t)
            .copy_from_slice(ws.step(t, first, count));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A staged chunk equals `reconstruction` + `column_vector` +
    /// `from_samples` over the same window range, bitwise.
    #[test]
    fn windowed_series_chunk_matches_allocating_marshal(
        series in prop::collection::vec(-100.0f64..100.0, 8..80),
        seq_len in 1usize..8,
        first_raw in 0usize..64,
        count_raw in 0usize..64,
    ) {
        let ws = WindowedSeries::new(&series, seq_len).expect("series longer than window");
        let first = first_raw % ws.len();
        let count = 1 + count_raw % (ws.len() - first);

        let wins = windows::reconstruction(&series, seq_len);
        prop_assert_eq!(wins.len(), ws.len());
        let picked: Vec<Matrix> = wins[first..first + count]
            .iter()
            .map(|w| Matrix::column_vector(w))
            .collect();
        let reference = Seq::from_samples(&picked);

        let mut buf = SeqBuf::new();
        stage_chunk(&ws, first, count, &mut buf);
        prop_assert_eq!(buf.seq().len(), reference.len());
        for t in 0..seq_len {
            prop_assert_eq!(buf.seq().step(t).as_slice(), reference.step(t).as_slice());
        }
    }

    /// Chunked staging (the 256-window chunks `recon_into` uses) covers the
    /// exact same values as one whole-series marshal.
    #[test]
    fn chunked_staging_covers_whole_series(
        series in prop::collection::vec(-100.0f64..100.0, 12..120),
        seq_len in 2usize..6,
        chunk in 1usize..9,
    ) {
        let ws = WindowedSeries::new(&series, seq_len).expect("long enough");
        let wins = windows::reconstruction(&series, seq_len);
        let mut buf = SeqBuf::new();
        let mut first = 0;
        while first < ws.len() {
            let count = chunk.min(ws.len() - first);
            stage_chunk(&ws, first, count, &mut buf);
            for (b, win) in wins[first..first + count].iter().enumerate() {
                for (t, &v) in win.iter().enumerate() {
                    prop_assert_eq!(buf.seq().step(t)[(b, 0)].to_bits(), v.to_bits());
                }
            }
            first += count;
        }
    }
}
