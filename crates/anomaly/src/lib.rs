//! LSTM-autoencoder anomaly detection and mitigation.
//!
//! Reimplements the paper's `EVChargingAnomalyFilter` (§II-B):
//!
//! * an LSTM autoencoder (encoder 50 → 25, decoder 25 → 50, dropout 0.2)
//!   trained **only on normal data** to learn baseline reconstruction;
//! * anomaly scoring by reconstruction MSE with the detection boundary at
//!   the **98th percentile** of training-set errors;
//! * `filter_anomalies`-style mitigation: consecutive anomalous segments are
//!   merged across gaps of ≤ 2 timestamps and replaced by linear
//!   interpolation between non-anomalous boundary points;
//! * detection metrics (precision / recall / F1 / false-positive rate /
//!   true-attacks-detected) for Table II.
//!
//! Alternative thresholds (mean + k·std, MAD) and mitigation strategies
//! (seasonal-naive, hold-last, autoencoder reconstruction) are included for
//! the ablation benches.
//!
//! # Examples
//!
//! ```no_run
//! use evfad_anomaly::{AnomalyFilter, FilterConfig};
//!
//! let train: Vec<f64> = (0..600).map(|i| 0.5 + 0.3 * (i as f64 * 0.26).sin()).collect();
//! let mut filter = AnomalyFilter::new(FilterConfig::fast(12));
//! filter.fit(&train)?;
//! let mut attacked = train.clone();
//! attacked[300] = 5.0;
//! let detection = filter.detect(&attacked);
//! let cleaned = filter.filter_anomalies(&attacked, &detection.flags)?;
//! assert_eq!(cleaned.len(), attacked.len());
//! # Ok::<(), evfad_anomaly::AnomalyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod error;
pub mod metrics;
pub mod mitigate;
pub mod online;
pub mod service;
pub mod threshold;

pub use detector::{AnomalyFilter, Detection, FilterConfig};
pub use error::AnomalyError;
pub use metrics::{DetectionReport, EpisodeReport};
pub use mitigate::{merge_segments, MitigationStrategy};
pub use online::{OnlineDecision, OnlineDetector};
pub use service::{ScoringService, TenantDecision, TenantVerdict};
pub use threshold::ThresholdRule;
