//! Detection-quality metrics (paper Table II and §III-C).

use serde::{Deserialize, Serialize};

/// Confusion-matrix summary of a point-wise detection run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// True positives (attacked and flagged).
    pub tp: usize,
    /// False positives (normal but flagged).
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives (attacked but missed).
    pub fn_: usize,
}

impl DetectionReport {
    /// Computes the confusion matrix from ground-truth and predicted flags.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length.
    pub fn from_flags(truth: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "flag length mismatch");
        let mut r = DetectionReport {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (true, true) => r.tp += 1,
                (false, true) => r.fp += 1,
                (false, false) => r.tn += 1,
                (true, false) => r.fn_ += 1,
            }
        }
        r
    }

    /// Precision `tp / (tp + fp)`; `0` when nothing was flagged.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall (a.k.a. the paper's "true attacks detected" ratio)
    /// `tp / (tp + fn)`; `0` when there were no attacks.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate `fp / (fp + tn)`; the paper reports 1.21 %.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Accuracy over all points.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Total number of points.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Merges two reports (e.g. per-client into overall).
    pub fn merged(self, other: DetectionReport) -> DetectionReport {
        DetectionReport {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            tn: self.tn + other.tn,
            fn_: self.fn_ + other.fn_,
        }
    }
}

fn ratio(num: usize, denom: usize) -> f64 {
    if denom == 0 {
        0.0
    } else {
        num as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let truth = [true, false, true, false];
        let r = DetectionReport::from_flags(&truth, &truth);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.f1(), 1.0);
        assert_eq!(r.false_positive_rate(), 0.0);
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn hand_computed_confusion() {
        let truth = [true, true, true, false, false, false];
        let pred = [true, false, false, true, false, false];
        let r = DetectionReport::from_flags(&truth, &pred);
        assert_eq!((r.tp, r.fp, r.tn, r.fn_), (1, 1, 2, 2));
        assert!((r.precision() - 0.5).abs() < 1e-12);
        assert!((r.recall() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.f1() - 0.4).abs() < 1e-12);
        assert!((r.false_positive_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let r = DetectionReport::from_flags(&[false, false], &[false, false]);
        assert_eq!(r.precision(), 0.0);
        assert_eq!(r.recall(), 0.0);
        assert_eq!(r.f1(), 0.0);
        assert_eq!(r.false_positive_rate(), 0.0);
    }

    #[test]
    fn merged_adds_counts() {
        let a = DetectionReport {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        let b = DetectionReport {
            tp: 10,
            fp: 20,
            tn: 30,
            fn_: 40,
        };
        let m = a.merged(b);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (11, 22, 33, 44));
        assert_eq!(m.total(), 110);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = DetectionReport::from_flags(&[true], &[true, false]);
    }
}

/// Episode-level detection summary.
///
/// The paper reports a "True Attacks Detected ratio" alongside point-wise
/// precision/recall; operators care whether each *attack event* was caught
/// at all, not only how many of its hours were flagged. An episode counts
/// as detected when at least `min_overlap` of its hours are flagged; a
/// false alarm is a maximal flagged run that overlaps no true episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeReport {
    /// Number of ground-truth attack episodes.
    pub episodes: usize,
    /// Episodes with sufficient flagged overlap.
    pub detected: usize,
    /// Maximal flagged runs that overlap no episode.
    pub false_alarm_events: usize,
}

impl EpisodeReport {
    /// Computes the report from ground-truth episode spans (as
    /// `(start, end)` half-open ranges) and point-wise predicted flags.
    ///
    /// `min_overlap` is the fraction of an episode's hours that must be
    /// flagged for it to count as detected (use a small value such as
    /// `0.1` for "any meaningful hit").
    ///
    /// # Panics
    ///
    /// Panics if an episode range exceeds `flags.len()`.
    pub fn from_episodes(episodes: &[(usize, usize)], flags: &[bool], min_overlap: f64) -> Self {
        let mut detected = 0;
        let mut covered = vec![false; flags.len()];
        for &(start, end) in episodes {
            assert!(end <= flags.len(), "episode range out of bounds");
            for c in covered.iter_mut().take(end).skip(start) {
                *c = true;
            }
            let hits = flags[start..end].iter().filter(|&&f| f).count();
            let needed = ((end - start) as f64 * min_overlap).max(1.0).ceil() as usize;
            if hits >= needed.min(end - start) {
                detected += 1;
            }
        }
        // Count maximal flagged runs fully outside every episode.
        let mut false_alarm_events = 0;
        let mut in_run = false;
        let mut run_touches_episode = false;
        for i in 0..flags.len() {
            if flags[i] {
                if !in_run {
                    in_run = true;
                    run_touches_episode = false;
                }
                if covered[i] {
                    run_touches_episode = true;
                }
            } else if in_run {
                in_run = false;
                if !run_touches_episode {
                    false_alarm_events += 1;
                }
            }
        }
        if in_run && !run_touches_episode {
            false_alarm_events += 1;
        }
        Self {
            episodes: episodes.len(),
            detected,
            false_alarm_events,
        }
    }

    /// Fraction of episodes detected (`0` when there were none).
    pub fn detection_ratio(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.detected as f64 / self.episodes as f64
        }
    }
}

#[cfg(test)]
mod episode_tests {
    use super::*;

    #[test]
    fn all_episodes_detected_with_partial_hits() {
        let flags = [
            false, true, false, false, false, false, true, true, false, false,
        ];
        let episodes = [(1usize, 4usize), (6, 9)];
        let r = EpisodeReport::from_episodes(&episodes, &flags, 0.1);
        assert_eq!(r.episodes, 2);
        assert_eq!(r.detected, 2);
        assert_eq!(r.false_alarm_events, 0);
        assert_eq!(r.detection_ratio(), 1.0);
    }

    #[test]
    fn higher_overlap_requirement_rejects_single_hits() {
        let flags = [false, true, false, false, false];
        let episodes = [(1usize, 5usize)]; // 1 of 4 hours flagged = 25%
        let strict = EpisodeReport::from_episodes(&episodes, &flags, 0.5);
        assert_eq!(strict.detected, 0);
        let lax = EpisodeReport::from_episodes(&episodes, &flags, 0.2);
        assert_eq!(lax.detected, 1);
    }

    #[test]
    fn false_alarm_runs_counted_once() {
        let flags = [true, true, false, true, false, false];
        let episodes: [(usize, usize); 0] = [];
        let r = EpisodeReport::from_episodes(&episodes, &flags, 0.1);
        assert_eq!(r.false_alarm_events, 2);
        assert_eq!(r.detection_ratio(), 0.0);
    }

    #[test]
    fn run_touching_episode_is_not_a_false_alarm() {
        // Flagged run spills out of the episode but overlaps it.
        let flags = [false, true, true, true, false];
        let episodes = [(2usize, 3usize)];
        let r = EpisodeReport::from_episodes(&episodes, &flags, 0.1);
        assert_eq!(r.detected, 1);
        assert_eq!(r.false_alarm_events, 0);
    }

    #[test]
    fn trailing_run_is_counted() {
        let flags = [false, false, true, true];
        let episodes: [(usize, usize); 0] = [];
        let r = EpisodeReport::from_episodes(&episodes, &flags, 0.1);
        assert_eq!(r.false_alarm_events, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_episode_panics() {
        let _ = EpisodeReport::from_episodes(&[(0, 10)], &[false; 5], 0.1);
    }
}
