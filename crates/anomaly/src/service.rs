//! Multi-tenant batched scoring front end.
//!
//! An [`OnlineDetector`](crate::OnlineDetector) serves one series. A
//! station-fleet backend serves thousands: every tenant streams readings
//! at its own cadence, and scoring them one window at a time wastes the
//! batched GEMMs the inference snapshot is built for. [`ScoringService`]
//! multiplexes many tenant series over **one** frozen
//! [`InferenceModel`]:
//!
//! - [`submit`](ScoringService::submit) enqueues readings into a shared
//!   admission queue (any tenant order, any interleaving);
//! - [`flush`](ScoringService::flush) drains the queue in deterministic
//!   rounds — round *r* takes each tenant's *r*-th pending reading in
//!   ascending tenant order — assembles every ready window of the round
//!   into one batch, and runs a single
//!   [`forward_batch_into`](InferenceModel::forward_batch_into) per
//!   worker over it;
//! - decisions come back in that same (round, tenant) order, each scored
//!   against the **tenant's own** threshold with the exact
//!   [`OnlineDetector::push`](crate::OnlineDetector::push) admission
//!   semantics (sanitising replaces a flagged reading with the previous
//!   admitted value; buffers stay bounded).
//!
//! # Determinism and exactness
//!
//! Worker parallelism splits the batch into contiguous row chunks served
//! by per-worker snapshot clones on the deterministic
//! [`parallel`](evfad_tensor::parallel) pool. Because every kernel row
//! depends only on its own window, chunking — and therefore the thread
//! count — cannot change any tenant's bits; with the default build's
//! `F64` lane the service is **bitwise-identical** to running one
//! `OnlineDetector` per tenant (pinned in tier-1 tests). The `Int8` lane
//! trades that identity for throughput.
//!
//! # Quarantine
//!
//! A non-finite reading (NaN sensor, dead channel) quarantines its
//! tenant: the reading is rejected with
//! [`TenantVerdict::Quarantined`] *before* batch assembly, every later
//! reading from that tenant is rejected the same way, and the shared
//! batch never sees the poison — the other tenants' scores are
//! unaffected down to the bit.

use crate::detector::AnomalyFilter;
use crate::error::AnomalyError;
use crate::online::OnlineDecision;
use evfad_nn::infer::{InferenceModel, Precision};
use evfad_tensor::parallel;
use std::collections::VecDeque;

/// Outcome of one submitted reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantVerdict {
    /// Context still filling; the reading was admitted unscored.
    Warmup,
    /// Scored against the tenant's threshold.
    Scored(OnlineDecision),
    /// The reading was non-finite, or the tenant was already
    /// quarantined: rejected, nothing entered the buffer or the batch.
    Quarantined,
}

/// One flushed decision: which tenant, and what happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantDecision {
    /// Tenant id as returned by [`ScoringService::add_tenant`].
    pub tenant: usize,
    /// The decision.
    pub verdict: TenantVerdict,
}

/// Per-tenant streaming state: context buffer, pending readings, policy.
#[derive(Debug, Clone)]
struct TenantState {
    buffer: Vec<f64>,
    pending: VecDeque<f64>,
    threshold: f64,
    sanitize: bool,
    quarantined: bool,
}

/// One worker's slice of a flush round: a snapshot clone plus reusable
/// input/reconstruction arenas.
#[derive(Debug)]
struct Worker {
    model: InferenceModel,
    input: Vec<f64>,
    recon: Vec<f64>,
    rows: usize,
    out_shape: (usize, usize),
}

/// Multi-tenant batched scoring service over one frozen autoencoder.
///
/// # Examples
///
/// ```no_run
/// use evfad_anomaly::{AnomalyFilter, FilterConfig, ScoringService, TenantVerdict};
/// use evfad_nn::infer::Precision;
///
/// let train: Vec<f64> = (0..400)
///     .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
///     .collect();
/// let mut filter = AnomalyFilter::new(FilterConfig::fast(24));
/// filter.fit(&train)?;
/// let mut service = ScoringService::from_filter(&filter, Precision::F64)?;
/// let a = service.add_tenant(true);
/// let b = service.add_tenant(false);
/// service.seed_context(a, &train);
/// service.seed_context(b, &train);
/// service.submit(a, 0.62);
/// service.submit(b, 9.0); // blatant spike
/// for d in service.flush() {
///     if let TenantVerdict::Scored(s) = d.verdict {
///         println!("tenant {} score {:.4} anomalous {}", d.tenant, s.score, s.anomalous);
///     }
/// }
/// # Ok::<(), evfad_anomaly::AnomalyError>(())
/// ```
#[derive(Debug)]
pub struct ScoringService {
    prototype: InferenceModel,
    workers: Vec<Worker>,
    threads: usize,
    seq_len: usize,
    default_threshold: f64,
    tenants: Vec<TenantState>,
    pending_total: usize,
    // Flush-round scratch: tenant id and raw value per batch row, and the
    // output slot each row's verdict patches.
    batch_tenants: Vec<usize>,
    batch_values: Vec<f64>,
    batch_slots: Vec<usize>,
}

impl ScoringService {
    /// Builds a service from a fitted filter: freezes the autoencoder at
    /// the requested precision and adopts the filter's threshold and
    /// window length as tenant defaults. Starts single-threaded — see
    /// [`ScoringService::set_threads`].
    ///
    /// # Errors
    ///
    /// [`AnomalyError::NotFitted`] if the filter has not been fitted;
    /// [`AnomalyError::Training`] if the model cannot be frozen.
    pub fn from_filter(filter: &AnomalyFilter, precision: Precision) -> Result<Self, AnomalyError> {
        let model = filter.model().ok_or(AnomalyError::NotFitted)?;
        let default_threshold = filter.threshold().ok_or(AnomalyError::NotFitted)?;
        let prototype = InferenceModel::freeze(model, precision)
            .map_err(|e| AnomalyError::Training(e.to_string()))?;
        Ok(Self {
            prototype,
            workers: Vec::new(),
            threads: 1,
            seq_len: filter.config().seq_len,
            default_threshold,
            tenants: Vec::new(),
            pending_total: 0,
            batch_tenants: Vec::new(),
            batch_values: Vec::new(),
            batch_slots: Vec::new(),
        })
    }

    /// Sets the worker count used to serve each flushed batch (clamped to
    /// at least 1). Thread count never changes any tenant's decisions —
    /// it only splits the batch into contiguous per-worker chunks.
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// Registers a tenant with the filter's fitted threshold. Returns the
    /// tenant id used by [`submit`](ScoringService::submit).
    pub fn add_tenant(&mut self, sanitize: bool) -> usize {
        self.add_tenant_with(self.default_threshold, sanitize)
    }

    /// Registers a tenant with its own decision threshold.
    pub fn add_tenant_with(&mut self, threshold: f64, sanitize: bool) -> usize {
        self.tenants.push(TenantState {
            buffer: Vec::new(),
            pending: VecDeque::new(),
            threshold,
            sanitize,
            quarantined: false,
        });
        self.tenants.len() - 1
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Whether a tenant has been quarantined by a non-finite reading.
    pub fn is_quarantined(&self, tenant: usize) -> bool {
        self.tenants[tenant].quarantined
    }

    /// Context points currently buffered for a tenant.
    pub fn context_len(&self, tenant: usize) -> usize {
        self.tenants[tenant].buffer.len()
    }

    /// Readings submitted but not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending_total
    }

    /// Warm-starts a tenant's context buffer (e.g. with the tail of its
    /// training series) so its first submitted reading is scored
    /// immediately. A non-finite history value quarantines the tenant.
    pub fn seed_context(&mut self, tenant: usize, history: &[f64]) {
        let seq_len = self.seq_len;
        let t = &mut self.tenants[tenant];
        for &v in history {
            if !v.is_finite() {
                t.quarantined = true;
                return;
            }
            t.buffer.push(v);
        }
        Self::bound_buffer(&mut t.buffer, seq_len);
    }

    /// Enqueues one reading for a tenant. Nothing is scored until
    /// [`flush`](ScoringService::flush).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not a registered id.
    pub fn submit(&mut self, tenant: usize, value: f64) {
        self.tenants[tenant].pending.push_back(value);
        self.pending_total += 1;
    }

    /// Drains the admission queue, scoring every ready window in batched
    /// forward passes, and returns the decisions in deterministic
    /// (round, tenant) order.
    pub fn flush(&mut self) -> Vec<TenantDecision> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// Like [`flush`](ScoringService::flush), writing into a caller-owned
    /// buffer (cleared first). A warm, shape-stable caller allocates
    /// nothing.
    pub fn flush_into(&mut self, out: &mut Vec<TenantDecision>) {
        out.clear();
        while self.pending_total > 0 {
            self.flush_round(out);
        }
    }

    /// `OnlineDetector::push`'s buffer bound: only the last
    /// `seq_len - 1` points matter; trim once the buffer outgrows
    /// `4 * seq_len`.
    fn bound_buffer(buffer: &mut Vec<f64>, seq_len: usize) {
        if buffer.len() > 4 * seq_len {
            let keep = buffer.len() - (seq_len - 1);
            buffer.drain(..keep);
        }
    }

    /// One admission round: each tenant's oldest pending reading, in
    /// ascending tenant order.
    fn flush_round(&mut self, out: &mut Vec<TenantDecision>) {
        self.batch_tenants.clear();
        self.batch_values.clear();
        self.batch_slots.clear();
        let seq_len = self.seq_len;
        for (id, t) in self.tenants.iter_mut().enumerate() {
            let Some(value) = t.pending.pop_front() else {
                continue;
            };
            self.pending_total -= 1;
            if t.quarantined || !value.is_finite() {
                t.quarantined = true;
                out.push(TenantDecision {
                    tenant: id,
                    verdict: TenantVerdict::Quarantined,
                });
                continue;
            }
            if t.buffer.len() < seq_len - 1 {
                t.buffer.push(value);
                out.push(TenantDecision {
                    tenant: id,
                    verdict: TenantVerdict::Warmup,
                });
                continue;
            }
            // Ready to score: joins the round's shared batch; the verdict
            // slot is patched after the forward pass.
            self.batch_tenants.push(id);
            self.batch_values.push(value);
            self.batch_slots.push(out.len());
            out.push(TenantDecision {
                tenant: id,
                verdict: TenantVerdict::Warmup,
            });
        }
        let rows = self.batch_tenants.len();
        if rows == 0 {
            return;
        }
        // Contiguous balanced row chunks, one per worker — the same split
        // `parallel::distribute` itself uses, so worker `w` serves rows
        // `[starts[w], starts[w+1])`.
        let chunks = self.threads.min(rows);
        while self.workers.len() < chunks {
            self.workers.push(Worker {
                model: self.prototype.clone(),
                input: Vec::new(),
                recon: Vec::new(),
                rows: 0,
                out_shape: (0, 0),
            });
        }
        let base = rows / chunks;
        let extra = rows % chunks;
        let mut start = 0usize;
        for (c, w) in self.workers.iter_mut().take(chunks).enumerate() {
            let len = base + usize::from(c < extra);
            w.rows = len;
            w.input.clear();
            for row in start..start + len {
                let t = &self.tenants[self.batch_tenants[row]];
                let tail = &t.buffer[t.buffer.len() - (seq_len - 1)..];
                w.input.extend_from_slice(tail);
                w.input.push(self.batch_values[row]);
            }
            start += len;
        }
        parallel::distribute(&mut self.workers[..chunks], chunks, |_, w| {
            if w.rows > 0 {
                w.out_shape = w.model.forward_batch_into(&w.input, w.rows, &mut w.recon);
            }
        });
        // Patch the verdicts in batch (= ascending tenant) order and admit
        // the readings with `OnlineDetector::push` semantics.
        let mut worker_idx = 0usize;
        let mut local = 0usize;
        for row in 0..rows {
            while local >= self.workers[worker_idx].rows {
                worker_idx += 1;
                local = 0;
            }
            let w = &self.workers[worker_idx];
            let (os, of) = w.out_shape;
            let recon_last = w.recon[local * os * of + (os - 1) * of];
            local += 1;
            let value = self.batch_values[row];
            let t = &mut self.tenants[self.batch_tenants[row]];
            let err = recon_last - value;
            let score = err * err;
            let anomalous = score > t.threshold;
            let admitted = if anomalous && t.sanitize {
                *t.buffer.last().expect("context is non-empty")
            } else {
                value
            };
            t.buffer.push(admitted);
            Self::bound_buffer(&mut t.buffer, seq_len);
            out[self.batch_slots[row]].verdict = TenantVerdict::Scored(OnlineDecision {
                score,
                anomalous,
                admitted,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::FilterConfig;
    use crate::online::OnlineDetector;

    fn sine(n: usize, phase: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.5 + 0.3 * ((i + phase) as f64 * std::f64::consts::TAU / 12.0).sin())
            .collect()
    }

    fn fitted_filter() -> AnomalyFilter {
        let mut f = AnomalyFilter::new(FilterConfig::fast(12));
        f.fit(&sine(400, 0)).expect("fit");
        f
    }

    /// Streams `series` through a dedicated OnlineDetector and through a
    /// service tenant, returning both decision streams.
    fn stream_both(
        filter: &AnomalyFilter,
        service: &mut ScoringService,
        tenant: usize,
        series: &[f64],
    ) -> (Vec<OnlineDecision>, Vec<TenantDecision>) {
        let mut reference =
            OnlineDetector::from_fitted(filter.clone(), true).expect("fitted reference");
        let expected = reference.push_all(series);
        let mut got = Vec::new();
        let mut round = Vec::new();
        for &v in series {
            service.submit(tenant, v);
            service.flush_into(&mut round);
            got.extend_from_slice(&round);
        }
        (expected, got)
    }

    #[test]
    fn single_tenant_matches_online_detector() {
        let filter = fitted_filter();
        let mut service = ScoringService::from_filter(&filter, Precision::F64).expect("service");
        let tenant = service.add_tenant(true);
        let mut series = sine(60, 3);
        series[40] += 3.0;
        let (expected, got) = stream_both(&filter, &mut service, tenant, &series);
        let scored: Vec<OnlineDecision> = got
            .iter()
            .filter_map(|d| match d.verdict {
                TenantVerdict::Scored(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(scored.len(), expected.len());
        for (s, e) in scored.iter().zip(&expected) {
            if cfg!(feature = "fastmath") {
                assert!((s.score - e.score).abs() < 1e-9);
            } else {
                assert_eq!(s.score.to_bits(), e.score.to_bits());
                assert_eq!(s.admitted.to_bits(), e.admitted.to_bits());
            }
            assert_eq!(s.anomalous, e.anomalous);
        }
    }

    #[test]
    fn batched_tenants_match_independent_detectors_any_thread_count() {
        let filter = fitted_filter();
        for threads in [1usize, 3] {
            let mut service =
                ScoringService::from_filter(&filter, Precision::F64).expect("service");
            service.set_threads(threads);
            let n_tenants = 5usize;
            let mut serieses = Vec::new();
            for t in 0..n_tenants {
                let id = service.add_tenant(false);
                assert_eq!(id, t);
                let mut s = sine(40, t * 7);
                if t == 2 {
                    s[25] += 3.0;
                }
                serieses.push(s);
            }
            // Interleave all tenants' readings, flushing after each step so
            // every round batches one window per tenant.
            let mut got: Vec<Vec<OnlineDecision>> = vec![Vec::new(); n_tenants];
            for step in 0..40 {
                for (t, s) in serieses.iter().enumerate() {
                    service.submit(t, s[step]);
                }
                for d in service.flush() {
                    if let TenantVerdict::Scored(s) = d.verdict {
                        got[d.tenant].push(s);
                    }
                }
            }
            for (t, s) in serieses.iter().enumerate() {
                let mut reference =
                    OnlineDetector::from_fitted(filter.clone(), false).expect("reference");
                let expected = reference.push_all(s);
                assert_eq!(got[t].len(), expected.len(), "tenant {t}");
                for (g, e) in got[t].iter().zip(&expected) {
                    if cfg!(feature = "fastmath") {
                        assert!((g.score - e.score).abs() < 1e-9);
                    } else {
                        assert_eq!(g.score.to_bits(), e.score.to_bits(), "tenant {t}");
                    }
                    assert_eq!(g.anomalous, e.anomalous, "tenant {t}");
                }
            }
        }
    }

    #[test]
    fn decisions_come_back_in_round_then_tenant_order() {
        let filter = fitted_filter();
        let mut service = ScoringService::from_filter(&filter, Precision::F64).expect("service");
        for _ in 0..3 {
            service.add_tenant(false);
        }
        // Tenant 2 submits twice (two rounds), others once — submission
        // order deliberately scrambled.
        service.submit(2, 0.5);
        service.submit(0, 0.5);
        service.submit(2, 0.6);
        service.submit(1, 0.5);
        let order: Vec<usize> = service.flush().iter().map(|d| d.tenant).collect();
        assert_eq!(order, vec![0, 1, 2, 2]);
        assert_eq!(service.pending(), 0);
    }

    #[test]
    fn nan_tenant_is_quarantined_without_poisoning_the_batch() {
        let filter = fitted_filter();
        let mut service = ScoringService::from_filter(&filter, Precision::F64).expect("service");
        let healthy = service.add_tenant(false);
        let broken = service.add_tenant(false);
        let history = sine(40, 1);
        service.seed_context(healthy, &history);
        service.seed_context(broken, &history);
        // Reference: the healthy tenant alone, no broken neighbour.
        let mut solo = ScoringService::from_filter(&filter, Precision::F64).expect("service");
        let solo_id = solo.add_tenant(false);
        solo.seed_context(solo_id, &history);
        let series = sine(20, 41);
        for &v in &series {
            service.submit(healthy, v);
            service.submit(broken, f64::NAN);
            solo.submit(solo_id, v);
            let decisions = service.flush();
            assert_eq!(decisions.len(), 2);
            assert_eq!(
                decisions[1].verdict,
                TenantVerdict::Quarantined,
                "all-NaN tenant must get an error decision every round"
            );
            let TenantVerdict::Scored(got) = decisions[0].verdict else {
                panic!("healthy tenant was not scored");
            };
            let TenantVerdict::Scored(want) = solo.flush()[0].verdict else {
                panic!("solo tenant was not scored");
            };
            assert_eq!(
                got.score.to_bits(),
                want.score.to_bits(),
                "NaN neighbour changed a healthy tenant's bits"
            );
        }
        assert!(service.is_quarantined(broken));
        assert!(!service.is_quarantined(healthy));
    }

    #[test]
    fn cold_tenant_warms_up_before_scoring() {
        let filter = fitted_filter();
        let mut service = ScoringService::from_filter(&filter, Precision::F64).expect("service");
        let t = service.add_tenant(false);
        let series = sine(30, 0);
        let mut warmups = 0;
        let mut scored = 0;
        for &v in &series {
            service.submit(t, v);
            for d in service.flush() {
                match d.verdict {
                    TenantVerdict::Warmup => warmups += 1,
                    TenantVerdict::Scored(_) => scored += 1,
                    TenantVerdict::Quarantined => panic!("unexpected quarantine"),
                }
            }
        }
        assert_eq!(warmups, 11);
        assert_eq!(scored, 30 - 11);
    }

    #[test]
    fn per_tenant_thresholds_are_respected() {
        let filter = fitted_filter();
        let mut service = ScoringService::from_filter(&filter, Precision::F64).expect("service");
        let strict = service.add_tenant_with(0.0, false);
        let lax = service.add_tenant_with(f64::INFINITY, false);
        let history = sine(40, 1);
        service.seed_context(strict, &history);
        service.seed_context(lax, &history);
        service.submit(strict, 0.9);
        service.submit(lax, 0.9);
        let decisions = service.flush();
        let TenantVerdict::Scored(s) = decisions[0].verdict else {
            panic!("strict tenant unscored");
        };
        let TenantVerdict::Scored(l) = decisions[1].verdict else {
            panic!("lax tenant unscored");
        };
        assert!(s.anomalous, "zero threshold must flag everything");
        assert!(!l.anomalous, "infinite threshold must flag nothing");
    }

    #[test]
    fn unfitted_filter_is_rejected() {
        let filter = AnomalyFilter::new(FilterConfig::fast(12));
        assert!(matches!(
            ScoringService::from_filter(&filter, Precision::F64),
            Err(AnomalyError::NotFitted)
        ));
    }
}
