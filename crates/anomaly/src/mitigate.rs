//! Anomaly mitigation: segment merging + interpolation.

use crate::error::AnomalyError;
use evfad_timeseries::impute;
use serde::{Deserialize, Serialize};

/// How flagged points are replaced.
///
/// The paper's `filter_anomalies` uses [`MitigationStrategy::Linear`]; the
/// other strategies implement its future-work suggestion of "more
/// sophisticated reconstruction techniques".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MitigationStrategy {
    /// Linear interpolation between non-anomalous boundary points (paper).
    #[default]
    Linear,
    /// Same-hour-yesterday substitution (period 24).
    SeasonalNaive,
    /// Hold the last non-anomalous value.
    HoldLast,
}

impl MitigationStrategy {
    /// Stable identifier for bench output.
    pub fn name(self) -> &'static str {
        match self {
            MitigationStrategy::Linear => "linear",
            MitigationStrategy::SeasonalNaive => "seasonal_naive",
            MitigationStrategy::HoldLast => "hold_last",
        }
    }

    /// Applies the strategy to every `true` entry in `mask`.
    ///
    /// # Errors
    ///
    /// Propagates [`AnomalyError::LengthMismatch`] (as converted from the
    /// underlying imputation error) on inconsistent inputs.
    pub fn apply(self, series: &[f64], mask: &[bool]) -> Result<Vec<f64>, AnomalyError> {
        if series.len() != mask.len() {
            return Err(AnomalyError::LengthMismatch {
                series: series.len(),
                mask: mask.len(),
            });
        }
        let fixed = match self {
            MitigationStrategy::Linear => impute::linear(series, mask)?,
            MitigationStrategy::SeasonalNaive => impute::seasonal_naive(series, mask, 24)?,
            MitigationStrategy::HoldLast => impute::hold_last(series, mask)?,
        };
        Ok(fixed)
    }
}

/// Merges anomalous runs separated by gaps of at most `max_gap` normal
/// points into single segments, returning the widened mask.
///
/// This reproduces the paper's `filter_anomalies` behaviour of "allowing
/// for small gaps (≤ 2 timestamps) to maintain continuity": a brief return
/// to normal inside an attack window is treated as part of the attack, so
/// the interpolation spans the whole disturbance.
///
/// # Examples
///
/// ```
/// use evfad_anomaly::merge_segments;
///
/// let mask = [false, true, false, false, true, false];
/// // Gap of two normal points between the runs is bridged.
/// let merged = merge_segments(&mask, 2);
/// assert_eq!(merged, vec![false, true, true, true, true, false]);
/// // With max_gap = 1 the runs stay separate.
/// assert_eq!(merge_segments(&mask, 1), mask.to_vec());
/// ```
pub fn merge_segments(mask: &[bool], max_gap: usize) -> Vec<bool> {
    let mut out = mask.to_vec();
    let mut last_true: Option<usize> = None;
    for (i, &flag) in mask.iter().enumerate() {
        if flag {
            if let Some(prev) = last_true {
                let gap = i - prev - 1;
                if gap > 0 && gap <= max_gap {
                    for slot in out.iter_mut().take(i).skip(prev + 1) {
                        *slot = true;
                    }
                }
            }
            last_true = Some(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_bridges_small_gaps_only() {
        let mask = [true, false, true, false, false, false, true];
        let merged = merge_segments(&mask, 2);
        assert_eq!(
            merged,
            vec![true, true, true, false, false, false, true],
            "gap of 1 bridged, gap of 3 left alone"
        );
    }

    #[test]
    fn merge_zero_gap_is_identity() {
        let mask = [true, false, true];
        assert_eq!(merge_segments(&mask, 0), mask.to_vec());
    }

    #[test]
    fn merge_empty_and_all_true() {
        assert_eq!(merge_segments(&[], 2), Vec::<bool>::new());
        assert_eq!(merge_segments(&[true, true], 2), vec![true, true]);
        assert_eq!(merge_segments(&[false, false], 2), vec![false, false]);
    }

    #[test]
    fn merge_is_idempotent() {
        let mask = [
            true, false, false, true, false, true, false, false, false, true,
        ];
        let once = merge_segments(&mask, 2);
        let twice = merge_segments(&once, 2);
        assert_eq!(once, twice);
    }

    #[test]
    fn strategies_replace_only_masked() {
        let series = [1.0, 50.0, 3.0, 4.0, 60.0, 6.0];
        let mask = [false, true, false, false, true, false];
        for strat in [
            MitigationStrategy::Linear,
            MitigationStrategy::SeasonalNaive,
            MitigationStrategy::HoldLast,
        ] {
            let fixed = strat.apply(&series, &mask).unwrap();
            assert_eq!(fixed.len(), series.len());
            for i in [0usize, 2, 3, 5] {
                assert_eq!(fixed[i], series[i], "{} modified clean point", strat.name());
            }
            assert_ne!(fixed[1], 50.0);
            assert_ne!(fixed[4], 60.0);
        }
    }

    #[test]
    fn linear_strategy_matches_impute() {
        let series = [0.0, 99.0, 2.0];
        let mask = [false, true, false];
        let fixed = MitigationStrategy::Linear.apply(&series, &mask).unwrap();
        assert_eq!(fixed, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(matches!(
            MitigationStrategy::Linear.apply(&[1.0], &[true, false]),
            Err(AnomalyError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn names() {
        assert_eq!(MitigationStrategy::Linear.name(), "linear");
        assert_eq!(MitigationStrategy::default(), MitigationStrategy::Linear);
    }
}
