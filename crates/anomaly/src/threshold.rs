//! Anomaly-score thresholding rules.

use evfad_tensor::stats;
use serde::{Deserialize, Serialize};

/// Rule converting a training-score distribution into a decision boundary.
///
/// The paper thresholds at the 98th percentile of training reconstruction
/// MSE. Mean+k·std (MSD) and median+k·MAD rules appear in the related work
/// the paper builds on ([4]) and are provided for the threshold ablation.
///
/// # Examples
///
/// ```
/// use evfad_anomaly::ThresholdRule;
///
/// let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let t = ThresholdRule::Percentile(98.0).boundary(&scores);
/// assert!((t - 97.02).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdRule {
    /// Flag scores above the given percentile of training scores
    /// (paper default: 98).
    Percentile(f64),
    /// Flag scores above `mean + k * std` of training scores.
    MeanStd {
        /// Multiplier `k`.
        k: f64,
    },
    /// Flag scores above `median + k * MAD` of training scores.
    Mad {
        /// Multiplier `k`.
        k: f64,
    },
}

impl ThresholdRule {
    /// The paper's rule: the 98th percentile of training scores.
    pub fn paper() -> Self {
        ThresholdRule::Percentile(98.0)
    }

    /// Computes the decision boundary from training scores.
    ///
    /// Returns `f64::INFINITY` for an empty slice (nothing can be flagged).
    pub fn boundary(self, training_scores: &[f64]) -> f64 {
        if training_scores.is_empty() {
            return f64::INFINITY;
        }
        match self {
            ThresholdRule::Percentile(p) => stats::percentile(training_scores, p),
            ThresholdRule::MeanStd { k } => {
                stats::mean(training_scores) + k * stats::std_dev(training_scores)
            }
            ThresholdRule::Mad { k } => {
                stats::median(training_scores) + k * stats::median_abs_deviation(training_scores)
            }
        }
    }

    /// Stable identifier for bench output.
    pub fn name(self) -> &'static str {
        match self {
            ThresholdRule::Percentile(_) => "percentile",
            ThresholdRule::MeanStd { .. } => "mean_std",
            ThresholdRule::Mad { .. } => "mad",
        }
    }
}

impl Default for ThresholdRule {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_flags_about_two_percent() {
        let scores: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let t = ThresholdRule::paper().boundary(&scores);
        let flagged = scores.iter().filter(|&&s| s > t).count();
        assert!((15..=25).contains(&flagged), "flagged {flagged}");
    }

    #[test]
    fn mean_std_boundary() {
        let scores = [0.0, 2.0]; // mean 1, std 1
        let t = ThresholdRule::MeanStd { k: 3.0 }.boundary(&scores);
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mad_boundary() {
        let scores = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0]; // median 2, MAD 1
        let t = ThresholdRule::Mad { k: 3.0 }.boundary(&scores);
        assert!((t - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scores_flag_nothing() {
        assert_eq!(ThresholdRule::paper().boundary(&[]), f64::INFINITY);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ThresholdRule::default(), ThresholdRule::Percentile(98.0));
    }

    #[test]
    fn names() {
        assert_eq!(ThresholdRule::paper().name(), "percentile");
        assert_eq!(ThresholdRule::MeanStd { k: 1.0 }.name(), "mean_std");
        assert_eq!(ThresholdRule::Mad { k: 1.0 }.name(), "mad");
    }
}
