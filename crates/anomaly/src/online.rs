//! Streaming anomaly detection.
//!
//! The batch [`AnomalyFilter`](crate::AnomalyFilter) scores a whole series
//! at once — the right tool for the paper's offline evaluation. A deployed
//! charging station instead sees one reading per hour and must decide
//! immediately. [`OnlineDetector`] wraps a fitted filter's autoencoder in a
//! ring buffer: each new reading completes one window, is scored by its
//! reconstruction error in that window, and is optionally replaced by an
//! imputed value before entering the buffer (so one spike does not poison
//! the context of subsequent decisions).

use crate::detector::{AnomalyFilter, FilterConfig};
use crate::error::AnomalyError;
use evfad_nn::TrainHistory;

/// A point decision from the streaming detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineDecision {
    /// Reconstruction-error score of the new point (its own window).
    pub score: f64,
    /// Whether the point was flagged.
    pub anomalous: bool,
    /// The value admitted into the context buffer (the raw value, or the
    /// imputed replacement when flagged and sanitising is enabled).
    pub admitted: f64,
}

/// Streaming wrapper around a fitted [`AnomalyFilter`].
///
/// # Examples
///
/// ```no_run
/// use evfad_anomaly::{FilterConfig, OnlineDetector};
///
/// let train: Vec<f64> = (0..400)
///     .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
///     .collect();
/// let mut detector = OnlineDetector::fit(FilterConfig::fast(24), &train, true)?;
/// for (i, &v) in train.iter().take(100).enumerate() {
///     let decision = detector.push(v);
///     if let Some(d) = decision {
///         assert!(d.score >= 0.0, "point {i}");
///     }
/// }
/// # Ok::<(), evfad_anomaly::AnomalyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    filter: AnomalyFilter,
    buffer: Vec<f64>,
    sanitize: bool,
    threshold: f64,
    seq_len: usize,
    /// Reusable window assembly buffer (context tail + the new reading).
    win_scratch: Vec<f64>,
    /// Reusable per-point score buffer filled by `score_into`.
    scores_scratch: Vec<f64>,
}

impl OnlineDetector {
    /// Trains a filter on `train` (normal data, already scaled) and wraps
    /// it for streaming. With `sanitize = true`, flagged readings are
    /// replaced in the context buffer by the previous admitted value.
    ///
    /// # Errors
    ///
    /// Propagates [`AnomalyFilter::fit`] failures.
    pub fn fit(config: FilterConfig, train: &[f64], sanitize: bool) -> Result<Self, AnomalyError> {
        let mut filter = AnomalyFilter::new(config);
        let _: TrainHistory = filter.fit(train)?;
        let threshold = filter.threshold().ok_or(AnomalyError::NotFitted)?;
        let seq_len = filter.config().seq_len;
        // Warm-start the buffer with the tail of the training data so the
        // first streamed reading already has context.
        let warm: Vec<f64> = train[train.len().saturating_sub(seq_len - 1)..].to_vec();
        Ok(Self {
            filter,
            buffer: warm,
            sanitize,
            threshold,
            seq_len,
            win_scratch: Vec::new(),
            scores_scratch: Vec::new(),
        })
    }

    /// Wraps an already-fitted filter (buffer starts empty; the first
    /// `seq_len - 1` readings only build context).
    ///
    /// # Errors
    ///
    /// [`AnomalyError::NotFitted`] if the filter has not been fitted.
    pub fn from_fitted(filter: AnomalyFilter, sanitize: bool) -> Result<Self, AnomalyError> {
        let threshold = filter.threshold().ok_or(AnomalyError::NotFitted)?;
        let seq_len = filter.config().seq_len;
        Ok(Self {
            filter,
            buffer: Vec::new(),
            sanitize,
            threshold,
            seq_len,
            win_scratch: Vec::new(),
            scores_scratch: Vec::new(),
        })
    }

    /// The decision threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of context points currently buffered.
    pub fn context_len(&self) -> usize {
        self.buffer.len()
    }

    /// Feeds one reading. Returns `None` while context is still filling
    /// (fewer than `seq_len - 1` buffered points), otherwise the decision.
    pub fn push(&mut self, value: f64) -> Option<OnlineDecision> {
        if self.buffer.len() < self.seq_len - 1 {
            self.buffer.push(value);
            return None;
        }
        // Score the window ending at this value. The window and score
        // buffers are reused across pushes, so a warm push makes zero
        // matrix allocations (the filter's staging batch and the model's
        // eval arena are shape-stable at window length `seq_len`).
        self.win_scratch.clear();
        self.win_scratch
            .extend_from_slice(&self.buffer[self.buffer.len() - (self.seq_len - 1)..]);
        self.win_scratch.push(value);
        self.filter
            .score_into(&self.win_scratch, &mut self.scores_scratch)
            .expect("window length equals seq_len by construction");
        let score = self.scores_scratch[self.seq_len - 1];
        let anomalous = score > self.threshold;
        let admitted = if anomalous && self.sanitize {
            *self.buffer.last().expect("context is non-empty")
        } else {
            value
        };
        self.buffer.push(admitted);
        // Bound the buffer: only the last seq_len - 1 values matter.
        if self.buffer.len() > 4 * self.seq_len {
            let keep = self.buffer.len() - (self.seq_len - 1);
            self.buffer.drain(..keep);
        }
        Some(OnlineDecision {
            score,
            anomalous,
            admitted,
        })
    }

    /// Streams a whole slice, returning one decision per point that had
    /// full context.
    pub fn push_all(&mut self, values: &[f64]) -> Vec<OnlineDecision> {
        let mut out = Vec::new();
        self.push_all_into(values, &mut out);
        out
    }

    /// Streams a whole slice into a caller-owned decision buffer.
    ///
    /// `out` is cleared first and receives one decision per point that had
    /// full context, in input order. With an `out` whose capacity already
    /// covers `values.len()` and a warm detector, a call makes zero matrix
    /// allocations and never grows a vector — the streaming twin of the
    /// batch path's `score_into`.
    pub fn push_all_into(&mut self, values: &[f64], out: &mut Vec<OnlineDecision>) {
        out.clear();
        out.extend(values.iter().filter_map(|&v| self.push(v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 12.0).sin())
            .collect()
    }

    fn fitted(sanitize: bool) -> OnlineDetector {
        OnlineDetector::fit(FilterConfig::fast(12), &sine(400), sanitize).expect("fit")
    }

    #[test]
    fn warm_started_detector_decides_immediately() {
        let mut d = fitted(false);
        assert_eq!(d.context_len(), 11);
        assert!(d.push(0.5).is_some());
    }

    #[test]
    fn cold_start_builds_context_first() {
        let mut filter = AnomalyFilter::new(FilterConfig::fast(12));
        filter.fit(&sine(400)).expect("fit");
        let mut d = OnlineDetector::from_fitted(filter, false).expect("wrap");
        let series = sine(30);
        let mut decisions = 0;
        for &v in &series {
            if d.push(v).is_some() {
                decisions += 1;
            }
        }
        assert_eq!(decisions, 30 - 11);
    }

    #[test]
    fn flags_streamed_spike() {
        let mut d = fitted(false);
        let mut spiked = sine(60);
        spiked[40] += 3.0;
        let decisions = d.push_all(&spiked);
        assert!(decisions[40].anomalous, "spike not flagged online");
        let normal_flags = decisions[..35].iter().filter(|x| x.anomalous).count();
        assert!(normal_flags <= 4, "too many online FPs: {normal_flags}");
    }

    #[test]
    fn sanitize_replaces_flagged_values_in_context() {
        let mut d = fitted(true);
        let mut spiked = sine(60);
        spiked[40] += 3.0;
        let decisions = d.push_all(&spiked);
        assert!(decisions[40].anomalous);
        assert!(
            decisions[40].admitted < 2.0,
            "spike leaked into the context buffer"
        );
    }

    #[test]
    fn sanitized_context_recovers_faster_after_spike() {
        let mut plain = fitted(false);
        let mut sanitized = fitted(true);
        let mut spiked = sine(80);
        for v in spiked.iter_mut().skip(40).take(3) {
            *v += 3.0;
        }
        let dp = plain.push_all(&spiked);
        let ds = sanitized.push_all(&spiked);
        // After the spike passes, the sanitised detector should flag no
        // more post-spike points than the plain one.
        let post = 46..60;
        let fp_plain = dp[post.clone()].iter().filter(|x| x.anomalous).count();
        let fp_sane = ds[post].iter().filter(|x| x.anomalous).count();
        assert!(fp_sane <= fp_plain, "sanitising made recovery worse");
    }

    #[test]
    fn buffer_stays_bounded() {
        let mut d = fitted(false);
        let _ = d.push_all(&sine(1000));
        assert!(d.context_len() <= 4 * 12);
    }

    #[test]
    fn unfitted_filter_rejected() {
        let filter = AnomalyFilter::new(FilterConfig::fast(12));
        assert!(matches!(
            OnlineDetector::from_fitted(filter, false),
            Err(AnomalyError::NotFitted)
        ));
    }
}
