//! Error type for the anomaly-detection pipeline.

use std::error::Error;
use std::fmt;

/// Errors surfaced by [`AnomalyFilter`](crate::AnomalyFilter).
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyError {
    /// The training series is too short to form one window.
    SeriesTooShort {
        /// Length of the provided series.
        len: usize,
        /// Window length required.
        needed: usize,
    },
    /// `detect`/`filter_anomalies` called before `fit`.
    NotFitted,
    /// Flag mask and series lengths differ.
    LengthMismatch {
        /// Series length.
        series: usize,
        /// Mask length.
        mask: usize,
    },
    /// Autoencoder training failed (propagated from the nn substrate).
    Training(String),
}

impl fmt::Display for AnomalyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyError::SeriesTooShort { len, needed } => {
                write!(f, "series of {len} points cannot form a window of {needed}")
            }
            AnomalyError::NotFitted => write!(f, "filter must be fitted before use"),
            AnomalyError::LengthMismatch { series, mask } => {
                write!(
                    f,
                    "mask length {mask} does not match series length {series}"
                )
            }
            AnomalyError::Training(msg) => write!(f, "autoencoder training failed: {msg}"),
        }
    }
}

impl Error for AnomalyError {}

impl From<evfad_nn::NnError> for AnomalyError {
    fn from(e: evfad_nn::NnError) -> Self {
        AnomalyError::Training(e.to_string())
    }
}

impl From<evfad_timeseries::TimeSeriesError> for AnomalyError {
    fn from(e: evfad_timeseries::TimeSeriesError) -> Self {
        AnomalyError::Training(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(AnomalyError::NotFitted.to_string().contains("fitted"));
        assert!(AnomalyError::SeriesTooShort { len: 3, needed: 24 }
            .to_string()
            .contains("24"));
        assert!(AnomalyError::LengthMismatch { series: 5, mask: 6 }
            .to_string()
            .contains('6'));
        assert!(AnomalyError::Training("x".into()).to_string().contains('x'));
    }

    #[test]
    fn converts_nn_error() {
        let e: AnomalyError = evfad_nn::NnError::EmptyDataset.into();
        assert!(matches!(e, AnomalyError::Training(_)));
    }
}
