//! The LSTM-autoencoder anomaly filter.

use crate::error::AnomalyError;
use crate::mitigate::{merge_segments, MitigationStrategy};
use crate::threshold::ThresholdRule;
use evfad_nn::{
    Activation, Adam, Dense, Dropout, Lstm, RepeatVector, Sample, SeqBuf, Sequential, TrainConfig,
    TrainHistory,
};
use evfad_tensor::Matrix;
use evfad_timeseries::windows::{self, WindowedSeries};
use serde::{Deserialize, Serialize};

/// Configuration of [`AnomalyFilter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Window length fed to the autoencoder (paper: 24 hours).
    pub seq_len: usize,
    /// Hidden sizes of the two encoder LSTMs (paper: 50 → 25; the decoder
    /// mirrors them 25 → 50).
    pub encoder_units: (usize, usize),
    /// Dropout rate after each encoder LSTM (paper: 0.2).
    pub dropout: f64,
    /// Threshold rule (paper: 98th percentile of training MSE).
    pub threshold: ThresholdRule,
    /// Maximum normal-point gap merged into an anomalous segment (paper: 2).
    pub max_gap: usize,
    /// Replacement strategy for flagged points (paper: linear).
    pub strategy: MitigationStrategy,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Early-stopping patience (paper: 10).
    pub patience: usize,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f64,
    /// Stride between training windows (1 = every window, larger = faster).
    pub train_stride: usize,
    /// Validation fraction used to drive early stopping.
    pub validation_split: f64,
    /// Seed for weight initialisation and shuffling.
    pub seed: u64,
}

impl FilterConfig {
    /// The paper's configuration (expensive: full-size autoencoder).
    pub fn paper(seed: u64) -> Self {
        Self {
            seq_len: 24,
            encoder_units: (50, 25),
            dropout: 0.2,
            threshold: ThresholdRule::paper(),
            max_gap: 2,
            strategy: MitigationStrategy::Linear,
            epochs: 30,
            patience: 10,
            batch_size: 32,
            learning_rate: 0.001,
            train_stride: 1,
            validation_split: 0.1,
            seed,
        }
    }

    /// A scaled-down configuration for tests and CI-speed benches.
    pub fn fast(seq_len: usize) -> Self {
        Self {
            seq_len,
            encoder_units: (10, 5),
            dropout: 0.1,
            threshold: ThresholdRule::paper(),
            max_gap: 2,
            strategy: MitigationStrategy::Linear,
            epochs: 10,
            patience: 5,
            batch_size: 32,
            learning_rate: 0.01,
            train_stride: 2,
            validation_split: 0.1,
            seed: 7,
        }
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self::paper(7)
    }
}

/// Result of scoring a series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Per-point reconstruction-error score.
    pub scores: Vec<f64>,
    /// `true` where the score exceeds the fitted boundary.
    pub flags: Vec<bool>,
    /// The decision boundary used.
    pub threshold: f64,
}

impl Detection {
    /// Number of flagged points.
    pub fn flagged_count(&self) -> usize {
        self.flags.iter().filter(|&&f| f).count()
    }

    /// Fraction of points flagged.
    pub fn flagged_fraction(&self) -> f64 {
        if self.flags.is_empty() {
            0.0
        } else {
            self.flagged_count() as f64 / self.flags.len() as f64
        }
    }
}

/// The paper's `EVChargingAnomalyFilter`: an LSTM autoencoder trained on
/// normal data, a percentile threshold on reconstruction error, and
/// gap-tolerant interpolation-based mitigation.
///
/// Expects inputs on a bounded scale — feed it `MinMaxScaler`-normalised
/// series, as the paper does.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct AnomalyFilter {
    config: FilterConfig,
    model: Option<Sequential>,
    threshold: Option<f64>,
    /// Reusable time-major staging batch for full (256-window) chunks.
    win_buf: SeqBuf,
    /// Reusable staging batch for the ragged tail chunk, kept separate so
    /// warm scoring never reshapes as it alternates full chunks and tail.
    win_buf_tail: SeqBuf,
    /// Reusable flat reconstruction buffer: window `w`'s reconstruction at
    /// in-window position `o` lives at `recon[w * seq_len + o]`.
    recon: Vec<f64>,
}

impl AnomalyFilter {
    /// Creates an unfitted filter.
    pub fn new(config: FilterConfig) -> Self {
        Self {
            config,
            model: None,
            threshold: None,
            win_buf: SeqBuf::new(),
            win_buf_tail: SeqBuf::new(),
            recon: Vec::new(),
        }
    }

    /// The filter's configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Whether [`AnomalyFilter::fit`] has completed.
    pub fn is_fitted(&self) -> bool {
        self.model.is_some() && self.threshold.is_some()
    }

    /// The fitted decision boundary, if any.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Borrow of the fitted autoencoder, if any (e.g. for benchmarking or
    /// inspecting the model outside the filter).
    pub fn model(&self) -> Option<&Sequential> {
        self.model.as_ref()
    }

    /// Builds the autoencoder architecture from the configuration.
    fn build_model(&self) -> Sequential {
        let (e1, e2) = self.config.encoder_units;
        Sequential::new(self.config.seed)
            .with(Lstm::new(1, e1, true))
            .with(Dropout::new(self.config.dropout))
            .with(Lstm::new(e1, e2, false))
            .with(Dropout::new(self.config.dropout))
            .with(RepeatVector::new(self.config.seq_len))
            .with(Lstm::new(e2, e2, true))
            .with(Lstm::new(e2, e1, true))
            .with(Dense::new(e1, 1, Activation::Linear))
            .with_optimizer(Adam::new(self.config.learning_rate))
    }

    /// Trains the autoencoder on a (presumed normal) series and fixes the
    /// detection boundary from the training-score distribution.
    ///
    /// # Errors
    ///
    /// * [`AnomalyError::SeriesTooShort`] if `train` cannot form one window;
    /// * [`AnomalyError::Training`] if the underlying fit fails.
    pub fn fit(&mut self, train: &[f64]) -> Result<TrainHistory, AnomalyError> {
        if train.len() < self.config.seq_len + 1 {
            return Err(AnomalyError::SeriesTooShort {
                len: train.len(),
                needed: self.config.seq_len + 1,
            });
        }
        let windows = windows::reconstruction(train, self.config.seq_len);
        let samples: Vec<Sample> = windows
            .iter()
            .step_by(self.config.train_stride.max(1))
            .map(|w| Sample::autoencoding(Matrix::column_vector(w)))
            .collect();
        let mut model = self.build_model();
        let cfg = TrainConfig {
            epochs: self.config.epochs,
            batch_size: self.config.batch_size,
            validation_split: self.config.validation_split,
            patience: Some(self.config.patience),
            ..TrainConfig::default()
        };
        let history = model.fit(&samples, &cfg)?;
        self.model = Some(model);
        // The boundary is set on the distribution of *individual* estimates
        // (each point contributes its backward- and forward-window errors
        // separately). A point is flagged when its minimum — i.e. BOTH
        // estimates — exceeds the boundary. Fitting the percentile on the
        // min-statistic instead would bias detection near attacks, where
        // one estimate is contaminated and the clean one faces a threshold
        // calibrated for the minimum of two draws.
        let (_, train_estimates) = self.score_with_estimates(train)?;
        self.threshold = Some(self.config.threshold.boundary(&train_estimates));
        Ok(history)
    }

    /// Per-point reconstruction-error scores.
    ///
    /// Each point gets two canonical error estimates — its reconstruction
    /// at the **last** position of the window ending on it, and at the
    /// **first** position of the window starting on it — and the score is
    /// the smaller of the two (edges fall back to whichever exists).
    ///
    /// Taking a minimum makes the score robust to window contamination: a
    /// normal point adjacent to an attack spike still has one window on the
    /// clean side that reconstructs it well, while a genuinely anomalous
    /// point is badly reconstructed from both directions. Using exactly two
    /// fixed estimates (rather than all `seq_len` covering windows) keeps
    /// the score's sampling statistics identical for every point, so the
    /// 98th-percentile boundary fitted on training data transfers without
    /// bias — otherwise attack-adjacent points, whose clean-window count is
    /// reduced, score systematically higher and the false-positive rate
    /// blows far past the paper's 1.21 %.
    ///
    /// # Errors
    ///
    /// * [`AnomalyError::NotFitted`] before [`AnomalyFilter::fit`];
    /// * [`AnomalyError::SeriesTooShort`] if `series` cannot form a window.
    pub fn score(&mut self, series: &[f64]) -> Result<Vec<f64>, AnomalyError> {
        let mut scores = Vec::new();
        self.score_core(series, &mut scores, None)?;
        Ok(scores)
    }

    /// Like [`AnomalyFilter::score`] but writing the per-point scores into
    /// a caller-owned buffer (cleared and resized to `series.len()`), so a
    /// warm streaming caller — e.g.
    /// [`OnlineDetector`](crate::OnlineDetector) — allocates nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnomalyFilter::score`].
    pub fn score_into(
        &mut self,
        series: &[f64],
        scores: &mut Vec<f64>,
    ) -> Result<(), AnomalyError> {
        self.score_core(series, scores, None)
    }

    /// Like [`AnomalyFilter::score`], additionally returning the flat list
    /// of individual (per-window) error estimates used for threshold
    /// calibration.
    fn score_with_estimates(
        &mut self,
        series: &[f64],
    ) -> Result<(Vec<f64>, Vec<f64>), AnomalyError> {
        let mut best = Vec::new();
        let mut estimates = Vec::new();
        self.score_core(series, &mut best, Some(&mut estimates))?;
        Ok((best, estimates))
    }

    /// Runs the autoencoder over every stride-1 window of `series`,
    /// filling the flat `self.recon` buffer
    /// (`recon[w * seq_len + o]` = window `w`'s reconstruction at offset
    /// `o`). Returns the window count.
    ///
    /// Windows are staged straight out of the series: timestep `t` of a
    /// chunk of stride-1 windows is the contiguous slice
    /// `series[first + t..first + t + count]`
    /// ([`WindowedSeries::step`]), copied once into the reusable batch —
    /// bitwise identical to the historical `reconstruction` →
    /// per-window `Matrix` → `Seq::from_samples` marshalling, without the
    /// triple materialisation. Chunked at 256 windows like
    /// [`Sequential::predict`].
    fn recon_into(&mut self, series: &[f64], seq_len: usize) -> Result<usize, AnomalyError> {
        let ws = WindowedSeries::new(series, seq_len).ok_or(AnomalyError::SeriesTooShort {
            len: series.len(),
            needed: seq_len,
        })?;
        if self.model.is_none() {
            return Err(AnomalyError::NotFitted);
        }
        let n_wins = ws.len();
        let mut first = 0usize;
        while first < n_wins {
            let count = (n_wins - first).min(256);
            let buf = if count == 256 {
                &mut self.win_buf
            } else {
                &mut self.win_buf_tail
            };
            let batch = buf.ensure(seq_len, count, 1);
            for t in 0..seq_len {
                batch
                    .step_data_mut(t)
                    .copy_from_slice(ws.step(t, first, count));
            }
            let model = self.model.as_mut().expect("checked above");
            model.predict_seq_into(buf.seq(), &mut self.recon, first * seq_len);
            first += count;
        }
        Ok(n_wins)
    }

    /// Shared scoring loop: fills `best` (cleared, one score per point)
    /// and, when requested, appends the raw per-window estimates.
    fn score_core(
        &mut self,
        series: &[f64],
        best: &mut Vec<f64>,
        mut estimates: Option<&mut Vec<f64>>,
    ) -> Result<(), AnomalyError> {
        let seq_len = self.config.seq_len;
        if series.len() < seq_len {
            return Err(AnomalyError::SeriesTooShort {
                len: series.len(),
                needed: seq_len,
            });
        }
        let n_wins = self.recon_into(series, seq_len)?;
        best.clear();
        best.resize(series.len(), f64::INFINITY);
        if let Some(est) = estimates.as_deref_mut() {
            est.clear();
            est.reserve(2 * n_wins);
        }
        for start in 0..n_wins {
            let r = &self.recon[start * seq_len..(start + 1) * seq_len];
            // Backward estimate: this window's last position scores point
            // `start + seq_len - 1`.
            let last_idx = start + seq_len - 1;
            let err_last = r[seq_len - 1] - series[last_idx];
            let sq_last = err_last * err_last;
            best[last_idx] = best[last_idx].min(sq_last);
            // Forward estimate: this window's first position scores `start`.
            let err_first = r[0] - series[start];
            let sq_first = err_first * err_first;
            best[start] = best[start].min(sq_first);
            if let Some(est) = estimates.as_deref_mut() {
                est.push(sq_last);
                est.push(sq_first);
            }
        }
        // Window starts cover 0..=n-seq_len, so every index is a `start` or
        // a `last_idx`; guard against any future change anyway.
        for (idx, b) in best.iter_mut().enumerate() {
            if !b.is_finite() {
                let start = idx.min(series.len() - seq_len);
                let offset = idx - start;
                let err = self.recon[start * seq_len + offset] - series[idx];
                *b = err * err;
            }
        }
        Ok(())
    }

    /// Scores a series and applies the fitted threshold.
    ///
    /// # Panics
    ///
    /// Panics if called before [`AnomalyFilter::fit`] (use [`AnomalyFilter::try_detect`]
    /// for a fallible variant).
    pub fn detect(&mut self, series: &[f64]) -> Detection {
        self.try_detect(series)
            .expect("AnomalyFilter::detect on unfitted filter")
    }

    /// Fallible variant of [`AnomalyFilter::detect`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnomalyFilter::score`].
    pub fn try_detect(&mut self, series: &[f64]) -> Result<Detection, AnomalyError> {
        let threshold = self.threshold.ok_or(AnomalyError::NotFitted)?;
        let scores = self.score(series)?;
        let flags = scores.iter().map(|&s| s > threshold).collect();
        Ok(Detection {
            scores,
            flags,
            threshold,
        })
    }

    /// The paper's `filter_anomalies`: merges flagged segments across gaps
    /// of ≤ `max_gap` normal points, then replaces them with the configured
    /// strategy (linear interpolation by default).
    ///
    /// # Errors
    ///
    /// [`AnomalyError::LengthMismatch`] if `flags` and `series` differ.
    pub fn filter_anomalies(
        &self,
        series: &[f64],
        flags: &[bool],
    ) -> Result<Vec<f64>, AnomalyError> {
        if series.len() != flags.len() {
            return Err(AnomalyError::LengthMismatch {
                series: series.len(),
                mask: flags.len(),
            });
        }
        let merged = merge_segments(flags, self.config.max_gap);
        self.config.strategy.apply(series, &merged)
    }

    /// Convenience: detect and mitigate in one call, returning the cleaned
    /// series and the detection.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnomalyFilter::try_detect`].
    pub fn clean(&mut self, series: &[f64]) -> Result<(Vec<f64>, Detection), AnomalyError> {
        let detection = self.try_detect(series)?;
        let cleaned = self.filter_anomalies(series, &detection.flags)?;
        Ok((cleaned, detection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.5 + 0.3 * (i as f64 * std::f64::consts::TAU / 12.0).sin())
            .collect()
    }

    fn fitted_filter(train_len: usize) -> AnomalyFilter {
        let mut f = AnomalyFilter::new(FilterConfig::fast(12));
        f.fit(&sine(train_len)).expect("fit");
        f
    }

    #[test]
    fn unfitted_filter_errors() {
        let mut f = AnomalyFilter::new(FilterConfig::fast(12));
        assert!(!f.is_fitted());
        assert_eq!(f.score(&sine(50)).unwrap_err(), AnomalyError::NotFitted);
        assert_eq!(
            f.try_detect(&sine(50)).unwrap_err(),
            AnomalyError::NotFitted
        );
    }

    #[test]
    fn fit_requires_enough_data() {
        let mut f = AnomalyFilter::new(FilterConfig::fast(12));
        assert!(matches!(
            f.fit(&sine(10)),
            Err(AnomalyError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn flags_obvious_spike() {
        let mut f = fitted_filter(400);
        let mut attacked = sine(200);
        for v in attacked.iter_mut().skip(100).take(4) {
            *v += 3.0; // enormous relative to the 0.2..0.8 signal
        }
        let det = f.detect(&attacked);
        assert!(det.flags[100..104].iter().any(|&x| x), "spike missed");
        // The clean region ahead of the spike stays mostly unflagged.
        let early_fp = det.flags[..80].iter().filter(|&&x| x).count();
        assert!(early_fp < 8, "too many false positives: {early_fp}");
    }

    #[test]
    fn training_false_positive_rate_near_percentile() {
        let mut f = fitted_filter(400);
        let det = f.detect(&sine(400));
        // Threshold was the 98th percentile of these very scores.
        let frac = det.flagged_fraction();
        assert!(frac < 0.06, "training FPR too high: {frac}");
    }

    #[test]
    fn clean_removes_spike_mass() {
        let mut f = fitted_filter(400);
        let clean = sine(200);
        let mut attacked = clean.clone();
        for v in attacked.iter_mut().skip(60).take(5) {
            *v += 3.0;
        }
        let (filtered, det) = f.clean(&attacked).expect("clean");
        assert!(det.flagged_count() > 0);
        let err_attacked: f64 = attacked
            .iter()
            .zip(&clean)
            .map(|(a, c)| (a - c).abs())
            .sum();
        let err_filtered: f64 = filtered
            .iter()
            .zip(&clean)
            .map(|(a, c)| (a - c).abs())
            .sum();
        assert!(
            err_filtered < err_attacked * 0.6,
            "filtering did not recover: {err_filtered} vs {err_attacked}"
        );
    }

    #[test]
    fn detect_deterministic_after_fit() {
        let mut f = fitted_filter(300);
        let series = sine(150);
        assert_eq!(f.detect(&series), f.detect(&series));
    }

    #[test]
    fn filter_anomalies_respects_gap_merging() {
        let f = fitted_filter(300);
        let series = vec![1.0, 9.0, 1.0, 9.0, 1.0];
        // Two flagged points with a one-point gap: the gap point is merged
        // and interpolated too.
        let flags = vec![false, true, false, true, false];
        let fixed = f.filter_anomalies(&series, &flags).expect("filter");
        assert_eq!(fixed[0], 1.0);
        assert_eq!(fixed[4], 1.0);
        assert!((fixed[2] - 1.0).abs() < 1e-9, "gap point interpolated");
    }

    #[test]
    fn filter_anomalies_length_check() {
        let f = fitted_filter(300);
        assert!(matches!(
            f.filter_anomalies(&[1.0, 2.0], &[true]),
            Err(AnomalyError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn paper_config_has_published_values() {
        let cfg = FilterConfig::paper(1);
        assert_eq!(cfg.seq_len, 24);
        assert_eq!(cfg.encoder_units, (50, 25));
        assert_eq!(cfg.dropout, 0.2);
        assert_eq!(cfg.max_gap, 2);
        assert_eq!(cfg.patience, 10);
        assert_eq!(cfg.batch_size, 32);
        assert_eq!(cfg.learning_rate, 0.001);
        assert_eq!(cfg.threshold, ThresholdRule::Percentile(98.0));
    }

    #[test]
    fn score_length_matches_series() {
        let mut f = fitted_filter(300);
        let series = sine(77);
        let scores = f.score(&series).expect("score");
        assert_eq!(scores.len(), 77);
        assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }
}
