//! `evfad-repro` — workspace root for the reproduction of *"Federated
//! Anomaly Detection and Mitigation for EV Charging Forecasting Under
//! Cyberattacks"*.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library surface lives in
//! [`evfad_core`] and its substrate crates.
//!
//! # Examples
//!
//! ```
//! use evfad_repro::core::tensor::Matrix;
//!
//! let m = Matrix::identity(2);
//! assert_eq!(m[(0, 0)], 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The full framework facade (re-export of [`evfad_core`]).
pub use evfad_core as core;
