//! Golden regression fixture: a small clean federated run whose forecast
//! metrics and final-weights checksum are pinned bit-exactly in
//! `tests/fixtures/golden_outcome.json`.
//!
//! Any change to the numeric stack — tensor kernels, LSTM backward pass,
//! aggregation order, scaler arithmetic, RNG streams — shifts at least one
//! bit somewhere in this run and fails the comparison. That is the point:
//! refactors must be bit-neutral or consciously regenerate the fixture.
//!
//! To regenerate after an intentional numeric change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and commit the updated fixture together with the change that moved it.

use evfad_core::data::{DatasetConfig, ShenzhenGenerator};
use evfad_core::federated::{wire, FederatedConfig, FederatedSimulation};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_outcome.json")
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GoldenFixture {
    scenario: String,
    weights_checksum: String,
    clients: Vec<GoldenClient>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GoldenClient {
    label: String,
    mae: f64,
    rmse: f64,
    r2: f64,
}

/// The pinned scenario: 3 synthetic Shenzhen zones, 360 hours, 24-step
/// windows, 2 federated rounds × 2 local epochs, plain FedAvg, no faults.
/// Everything is seeded; the run is bit-reproducible.
fn run_golden_scenario() -> GoldenFixture {
    let prepared: Vec<PreparedClient> = ShenzhenGenerator::new(DatasetConfig::small(360, 11))
        .generate_all()
        .iter()
        .map(|c| PreparedClient::prepare(c.zone.label(), &c.demand, 24, 0.8).expect("prepare"))
        .collect();
    let cfg = FederatedConfig {
        rounds: 2,
        epochs_per_round: 2,
        batch_size: 32,
        parallel: false,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(build_forecaster(6, 0.01, 1), cfg);
    for p in &prepared {
        sim.add_client(p.label.clone(), p.train.clone());
    }
    let outcome = sim.run().expect("golden run");
    let mut global = sim
        .model_with_weights(&outcome.global_weights)
        .expect("weights fit");
    let clients = prepared
        .iter()
        .map(|p| {
            let eval = p.evaluate_raw(&mut global).expect("evaluate");
            GoldenClient {
                label: p.label.clone(),
                mae: eval.mae,
                rmse: eval.rmse,
                r2: eval.r2,
            }
        })
        .collect();
    GoldenFixture {
        scenario: "shenzhen-small-360h | window 24 | split 0.8 | fedavg 2x2 | \
                   forecaster(6, 0.01, seed 1)"
            .to_string(),
        weights_checksum: format!("{:016x}", wire::weights_checksum(&outcome.global_weights)),
        clients,
    }
}

#[test]
fn golden_outcome_matches_the_committed_fixture() {
    let run = run_golden_scenario();
    let path = fixture_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        let pretty = serde_json::to_string_pretty(&run).expect("serialize");
        std::fs::write(&path, pretty + "\n").expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    let expected: GoldenFixture = serde_json::from_str(&raw).expect("fixture parses");
    assert_eq!(
        expected.weights_checksum, run.weights_checksum,
        "final global weights changed bit-for-bit"
    );
    assert_eq!(expected.clients.len(), run.clients.len());
    for (exp, actual) in expected.clients.iter().zip(&run.clients) {
        assert_eq!(exp.label, actual.label);
        // The vendored serde_json parses floats shortest-roundtrip, so a
        // bit-exact comparison through JSON is sound.
        for (key, pinned, current) in [
            ("mae", exp.mae, actual.mae),
            ("rmse", exp.rmse, actual.rmse),
            ("r2", exp.r2, actual.r2),
        ] {
            assert_eq!(
                pinned.to_bits(),
                current.to_bits(),
                "{}.{key}: fixture {pinned:?} vs current {current:?}",
                exp.label
            );
        }
    }
}

#[test]
fn golden_scenario_is_reproducible_within_a_build() {
    // The fixture test above is only meaningful if the scenario itself is
    // deterministic; pin that independently of the committed file.
    let a = run_golden_scenario();
    let b = run_golden_scenario();
    assert_eq!(a.weights_checksum, b.weights_checksum);
    for (ca, cb) in a.clients.iter().zip(&b.clients) {
        assert_eq!(ca.label, cb.label);
        assert_eq!(ca.mae.to_bits(), cb.mae.to_bits());
        assert_eq!(ca.rmse.to_bits(), cb.rmse.to_bits());
        assert_eq!(ca.r2.to_bits(), cb.r2.to_bits());
    }
}
