//! Serialisation round-trips across the workspace: model checkpoints,
//! scalers, attack outcomes, and study reports.

use evfad_core::attack::{DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::nn::Sequential;
use evfad_core::tensor::Matrix;
use evfad_core::timeseries::MinMaxScaler;

#[test]
fn forecaster_checkpoint_round_trip_preserves_predictions() {
    let mut model = build_forecaster(10, 0.001, 42);
    let input = vec![Matrix::column_vector(
        &(0..24).map(|t| (t as f64 * 0.3).sin()).collect::<Vec<_>>(),
    )];
    let before = model.predict(&input);
    let json = model.to_json();
    let mut restored = Sequential::from_json(&json).expect("restore");
    assert_eq!(before, restored.predict(&input));
}

#[test]
fn restored_model_can_keep_training() {
    // A checkpoint is only useful if training can resume from it.
    let mut model = build_forecaster(6, 0.01, 1);
    let samples: Vec<evfad_core::nn::Sample> = (0..32)
        .map(|i| {
            let xs: Vec<f64> = (0..8).map(|t| ((i + t) as f64 * 0.4).sin()).collect();
            evfad_core::nn::Sample::new(
                Matrix::column_vector(&xs),
                Matrix::from_vec(1, 1, vec![((i + 8) as f64 * 0.4).sin()]),
            )
        })
        .collect();
    let cfg = evfad_core::nn::TrainConfig {
        epochs: 3,
        ..evfad_core::nn::TrainConfig::default()
    };
    model.fit(&samples, &cfg).expect("first fit");
    let mut restored = Sequential::from_json(&model.to_json()).expect("restore");
    let before = restored.evaluate(&samples, evfad_core::nn::Loss::Mse);
    restored.fit(&samples, &cfg).expect("resumed fit");
    let after = restored.evaluate(&samples, evfad_core::nn::Loss::Mse);
    assert!(
        after <= before * 1.05,
        "resumed training diverged: {before} -> {after}"
    );
}

#[test]
fn scaler_and_attack_outcome_serde() {
    let client = ShenzhenGenerator::new(DatasetConfig::small(200, 3))
        .generate_zone(evfad_core::data::Zone::Z105);
    let scaler = MinMaxScaler::fit(&client.demand).expect("fit");
    let json = serde_json::to_string(&scaler).expect("ser");
    let back: MinMaxScaler = serde_json::from_str(&json).expect("de");
    assert_eq!(scaler, back);

    let outcome = DdosInjector::new(DdosConfig::default()).inject(&client.demand, 1);
    let json = serde_json::to_string(&outcome).expect("ser");
    let back: evfad_core::attack::AttackOutcome = serde_json::from_str(&json).expect("de");
    assert_eq!(outcome, back);
}

#[test]
fn client_dataset_serde_round_trip() {
    let data = ShenzhenGenerator::new(DatasetConfig::small(100, 7)).generate_all();
    let json = serde_json::to_string(&data).expect("ser");
    let back: Vec<evfad_core::data::ClientData> = serde_json::from_str(&json).expect("de");
    assert_eq!(data, back);
}

#[test]
fn weights_survive_json_exactly() {
    // The federated exchange serialises weight tensors; check bit-exact
    // round-trips through the JSON layer (float_roundtrip feature).
    let model = build_forecaster(12, 0.001, 9);
    let weights = model.weights();
    let json = serde_json::to_string(&weights).expect("ser");
    let back: Vec<Matrix> = serde_json::from_str(&json).expect("de");
    assert_eq!(weights, back);
}
