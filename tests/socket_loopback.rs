//! Loopback integration suite: the federation over real TCP sockets.
//!
//! Spawns an `evfad` socket server and N socket clients on localhost,
//! runs full federated rounds through the live transport, and pins the
//! central claim of the socket layer: for the same seed and config, the
//! socket run's digest serialises to **byte-identical JSON** as the
//! in-process [`FederatedSimulation`] digest. The shared round engine
//! makes that a property of the code shape; these tests make it a
//! regression guarantee.
//!
//! Traffic is also pinned arithmetically: metering counts protocol
//! payload bytes only (frame and envelope overhead excluded), so the
//! live run's byte totals must equal `wire::encoded_size` arithmetic.

use evfad_core::federated::{
    wire, CompressionMode, FederatedConfig, FederatedOutcome, FederatedSimulation, SocketClient,
    SocketServer, SocketServerConfig,
};
use evfad_core::nn::{forecaster_model, Sample};
use evfad_core::tensor::Matrix;

/// Tiny per-client dataset: a phase-shifted sine, 6-step windows —
/// the repo's standard fixture, identical to the chaos suite's.
fn sine_samples(n: usize, phase: f64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let xs: Vec<f64> = (0..6)
                .map(|t| ((i + t) as f64 * 0.5 + phase).sin())
                .collect();
            Sample::new(
                Matrix::column_vector(&xs),
                Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
            )
        })
        .collect()
}

/// The standard three-station roster used across these tests.
const ROSTER: [(&str, f64); 3] = [("z102", 0.0), ("z105", 0.8), ("z108", 1.6)];

fn loopback_config(rounds: usize) -> FederatedConfig {
    FederatedConfig {
        rounds,
        epochs_per_round: 2,
        batch_size: 16,
        parallel: false,
        ..FederatedConfig::default()
    }
}

/// Runs a full federation over localhost TCP: server on an ephemeral
/// port, one thread per client. Returns the server outcome and each
/// client's final global model, in roster order.
fn run_loopback(
    config: FederatedConfig,
    roster: &[(&str, f64)],
) -> (FederatedOutcome, Vec<Vec<Matrix>>) {
    let ids: Vec<String> = roster.iter().map(|(id, _)| id.to_string()).collect();
    let server_cfg = SocketServerConfig::new(config, ids);
    let mut server =
        SocketServer::bind("127.0.0.1:0", forecaster_model(4, 3), server_cfg).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let client_threads: Vec<_> = roster
        .iter()
        .map(|&(id, phase)| {
            let id = id.to_string();
            std::thread::spawn(move || {
                let client = SocketClient { time_dilation: 0.0 };
                client.run(addr, id, forecaster_model(4, 3), sine_samples(32, phase))
            })
        })
        .collect();
    let outcome = server_thread
        .join()
        .expect("server thread panicked")
        .expect("server run failed");
    let globals = client_threads
        .into_iter()
        .map(|h| {
            h.join()
                .expect("client thread panicked")
                .expect("client run")
        })
        .collect();
    (outcome, globals)
}

/// The same schedule run entirely in-process, for digest comparison.
fn run_in_process(config: FederatedConfig, roster: &[(&str, f64)]) -> FederatedOutcome {
    let mut sim = FederatedSimulation::new(forecaster_model(4, 3), config);
    for &(id, phase) in roster {
        sim.add_client(id, sine_samples(32, phase));
    }
    sim.run().expect("in-process run failed")
}

/// The tentpole guarantee: a federation over real sockets produces a
/// digest whose JSON serialisation is byte-for-byte the in-process
/// simulation's — same sampling, same losses, same checksum, same
/// traffic. Every client walks away holding the aggregated global.
#[test]
fn loopback_digest_is_byte_identical_to_in_process() {
    let (socket_outcome, client_globals) = run_loopback(loopback_config(3), &ROSTER);
    let sim_outcome = run_in_process(loopback_config(3), &ROSTER);

    let socket_json = serde_json::to_string(&socket_outcome.digest()).unwrap();
    let sim_json = serde_json::to_string(&sim_outcome.digest()).unwrap();
    assert_eq!(socket_json, sim_json);

    for global in &client_globals {
        assert_eq!(global, &socket_outcome.global_weights);
    }
}

/// Metering counts protocol payload bytes only, so the live run's
/// traffic must equal pure `wire::encoded_size` arithmetic: with full
/// participation and no faults, R rounds over N clients cost N·R
/// uplinks plus N·(R−1) broadcasts (round 0 starts from the shared
/// initialisation), every one a full-precision weight payload.
#[test]
fn loopback_traffic_matches_encoded_size_arithmetic() {
    let rounds = 3;
    let n = ROSTER.len();
    let (outcome, _) = run_loopback(loopback_config(rounds), &ROSTER);

    let payload = wire::encoded_size(&forecaster_model(4, 3).weights());
    let uplinks = n * rounds;
    let broadcasts = n * (rounds - 1);
    assert_eq!(outcome.traffic.messages, uplinks + broadcasts);
    assert_eq!(outcome.traffic.bytes, (uplinks + broadcasts) * payload);
    assert_eq!(outcome.traffic.retries, 0);

    // Per-round stats agree with the same arithmetic.
    for (round, stats) in outcome.rounds.iter().enumerate() {
        assert_eq!(stats.uplink_bytes, n * payload);
        let expected_down = if round == 0 { 0 } else { n * payload };
        assert_eq!(stats.downlink_bytes, expected_down);
    }
}

/// Digest identity holds when uplinks are 8-bit quantised: the client
/// encodes, the payload crosses the wire, and the server's dequantised
/// weights — and metered byte counts — match the in-process path's
/// encode/decode round trip exactly.
#[test]
fn loopback_digest_identity_holds_under_quant8() {
    let config = FederatedConfig {
        compression: CompressionMode::Quant8,
        ..loopback_config(2)
    };
    let (socket_outcome, _) = run_loopback(config.clone(), &ROSTER);
    let sim_outcome = run_in_process(config, &ROSTER);
    assert_eq!(
        serde_json::to_string(&socket_outcome.digest()).unwrap(),
        serde_json::to_string(&sim_outcome.digest()).unwrap()
    );
}

/// Digest identity holds for sparse top-k delta uplinks, where the
/// client diffs against its own copy of the global model: the copies
/// stay in lock-step with the server's, so the reconstruction matches.
#[test]
fn loopback_digest_identity_holds_under_topk_delta() {
    let config = FederatedConfig {
        compression: CompressionMode::TopKDelta { k: 8 },
        ..loopback_config(2)
    };
    let (socket_outcome, _) = run_loopback(config.clone(), &ROSTER);
    let sim_outcome = run_in_process(config, &ROSTER);
    assert_eq!(
        serde_json::to_string(&socket_outcome.digest()).unwrap(),
        serde_json::to_string(&sim_outcome.digest()).unwrap()
    );
}

/// Partial participation samples identically over sockets: the
/// scheduler draws from registration order on both paths, so the same
/// subset trains each round and idle clients simply hold for the next
/// broadcast.
#[test]
fn partial_participation_samples_identically_over_sockets() {
    let roster = [("z102", 0.0), ("z105", 0.8), ("z108", 1.6), ("z111", 2.4)];
    let config = FederatedConfig {
        participation: 0.5,
        sampling_seed: 7,
        ..loopback_config(3)
    };
    let (socket_outcome, _) = run_loopback(config.clone(), &roster);
    let sim_outcome = run_in_process(config, &roster);
    assert_eq!(
        serde_json::to_string(&socket_outcome.digest()).unwrap(),
        serde_json::to_string(&sim_outcome.digest()).unwrap()
    );
    for stats in &socket_outcome.rounds {
        assert_eq!(stats.participants.len(), 2);
    }
}
