//! Chaos suite: deterministic fault injection against the federated loop.
//!
//! Every fault decision flows from the seeded [`FaultPlan`], so a chaotic
//! run is exactly as reproducible as a clean one — same seed, same faults,
//! same bytes. These tests pin that guarantee and the paper's resilience
//! story: a corrupted client poisons plain FedAvg while the robust
//! aggregation rules shrug it off, and a federation degrades gracefully
//! through drop-outs, stragglers, and flaky uplinks.

use evfad_core::federated::{
    Aggregator, Corruption, FaultKind, FaultOutcome, FaultPlan, FederatedConfig, FederatedError,
    FederatedOutcome, FederatedSimulation, RoundSelector, SocketClient, SocketServer,
    SocketServerConfig,
};
use evfad_core::nn::{forecaster_model, Loss, Sample, Sequential};
use evfad_core::tensor::Matrix;

/// Tiny per-client dataset: a phase-shifted sine, 6-step windows.
fn sine_samples(n: usize, phase: f64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let xs: Vec<f64> = (0..6)
                .map(|t| ((i + t) as f64 * 0.5 + phase).sin())
                .collect();
            Sample::new(
                Matrix::column_vector(&xs),
                Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
            )
        })
        .collect()
}

/// A four-client federation (Krum with f = 1 needs n ≥ 4).
fn four_client_sim(aggregator: Aggregator, faults: Option<FaultPlan>) -> FederatedSimulation {
    let cfg = FederatedConfig {
        rounds: 2,
        epochs_per_round: 2,
        batch_size: 16,
        aggregator,
        parallel: false,
        faults,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(forecaster_model(4, 3), cfg);
    sim.add_client("z102", sine_samples(32, 0.0));
    sim.add_client("z105", sine_samples(32, 0.8));
    sim.add_client("z108", sine_samples(32, 1.6));
    sim.add_client("z111", sine_samples(32, 2.4));
    sim
}

/// Euclidean distance between two weight sets.
fn weights_distance(a: &[Matrix], b: &[Matrix]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            x.as_slice()
                .iter()
                .zip(y.as_slice())
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
        })
        .sum::<f64>()
        .sqrt()
}

/// A plan exercising every fault kind at once, with a probabilistic rule.
fn kitchen_sink_plan() -> FaultPlan {
    FaultPlan::new(42)
        .with_timeout(30.0)
        .with_retry(2, 0.5)
        .with_min_participants(1)
        .with_rule(
            "z102",
            RoundSelector::Probability { p: 0.5 },
            FaultKind::DropOut,
        )
        .with_rule(
            "z105",
            RoundSelector::Every,
            FaultKind::Straggler {
                delay_seconds: 12.0,
            },
        )
        .with_rule(
            "z108",
            RoundSelector::Only { round: 1 },
            FaultKind::Corrupt {
                corruption: Corruption::SignFlip,
            },
        )
        .with_rule(
            "z111",
            RoundSelector::Every,
            FaultKind::Transient { failures: 1 },
        )
}

#[test]
fn same_seed_yields_byte_identical_outcomes() {
    let run = |parallel: bool| {
        let cfg = FederatedConfig {
            rounds: 2,
            epochs_per_round: 2,
            batch_size: 16,
            parallel,
            faults: Some(kitchen_sink_plan()),
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(forecaster_model(4, 3), cfg);
        sim.add_client("z102", sine_samples(32, 0.0));
        sim.add_client("z105", sine_samples(32, 0.8));
        sim.add_client("z108", sine_samples(32, 1.6));
        sim.add_client("z111", sine_samples(32, 2.4));
        sim.run().expect("chaotic run")
    };
    let a = run(false);
    let b = run(true);
    // Identical weights bit for bit, identical fault logs, identical
    // digest JSON — thread scheduling must not leak into any of them.
    assert_eq!(a.global_weights, b.global_weights);
    let events_a: Vec<_> = a.fault_events().cloned().collect();
    let events_b: Vec<_> = b.fault_events().cloned().collect();
    assert_eq!(events_a, events_b);
    assert!(!events_a.is_empty(), "the kitchen-sink plan must fire");
    let digest_a = serde_json::to_vec(&a.digest()).expect("digest json");
    let digest_b = serde_json::to_vec(&b.digest()).expect("digest json");
    assert_eq!(digest_a, digest_b, "digest JSON must be byte-identical");
}

#[test]
fn a_different_fault_seed_changes_only_the_probabilistic_faults() {
    let run = |seed: u64| {
        let plan = FaultPlan::new(seed).with_rule(
            "z102",
            RoundSelector::Probability { p: 0.5 },
            FaultKind::DropOut,
        );
        let mut sim = four_client_sim(Aggregator::FedAvg, Some(plan));
        sim.run().expect("run").digest()
    };
    let digests: Vec<_> = (0..16).map(run).collect();
    // Across 16 seeds of a p = 0.5 × 2-round plan, at least two digests
    // must differ (the chance of a 16-way tie is ~2⁻³⁰).
    assert!(
        digests.iter().any(|d| *d != digests[0]),
        "probabilistic faults never varied across seeds"
    );
    // And the same seed reproduces its own digest exactly.
    assert_eq!(run(7), run(7));
}

#[test]
fn sign_flip_poisons_fedavg_but_not_robust_rules() {
    let corrupt_plan = || {
        Some(FaultPlan::new(9).with_rule(
            "z105",
            RoundSelector::Every,
            FaultKind::Corrupt {
                corruption: Corruption::SignFlip,
            },
        ))
    };
    let final_weights = |agg: Aggregator, faults: Option<FaultPlan>| {
        four_client_sim(agg, faults)
            .run()
            .expect("run")
            .global_weights
    };
    let fedavg_shift = weights_distance(
        &final_weights(Aggregator::FedAvg, None),
        &final_weights(Aggregator::FedAvg, corrupt_plan()),
    );
    assert!(
        fedavg_shift > 1e-3,
        "sign-flip should visibly move FedAvg (shift = {fedavg_shift})"
    );
    for agg in [
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 1 },
        Aggregator::Krum { byzantine: 1 },
    ] {
        let shift = weights_distance(
            &final_weights(agg, None),
            &final_weights(agg, corrupt_plan()),
        );
        assert!(
            shift < fedavg_shift * 0.25,
            "{agg:?} shifted {shift} under sign-flip vs FedAvg's {fedavg_shift}"
        );
    }
}

#[test]
fn nan_flood_breaks_fedavg_but_robust_rules_stay_finite() {
    let plan = || {
        Some(FaultPlan::new(9).with_rule(
            "z108",
            RoundSelector::Every,
            FaultKind::Corrupt {
                corruption: Corruption::NanFlood,
            },
        ))
    };
    // Under FedAvg the round-0 aggregate is already NaN; broadcasting it
    // poisons every client's round-1 training. The loop surfaces that as a
    // clean error rather than silently converging to garbage.
    let mut poisoned = four_client_sim(Aggregator::FedAvg, plan());
    assert!(matches!(
        poisoned.run().unwrap_err(),
        FederatedError::ClientTraining { .. }
    ));
    // A single round shows the mechanism: the NaN flood reaches the
    // global weights untouched — that is the vulnerability.
    let one_round = FederatedConfig {
        rounds: 1,
        epochs_per_round: 2,
        batch_size: 16,
        parallel: false,
        faults: plan(),
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(forecaster_model(4, 3), one_round);
    sim.add_client("z102", sine_samples(32, 0.0));
    sim.add_client("z108", sine_samples(32, 1.6));
    let weights = sim.run().expect("one round").global_weights;
    assert!(
        weights.iter().any(|m| !m.is_finite()),
        "FedAvg must propagate a NaN flood"
    );
    for agg in [
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 1 },
        Aggregator::Krum { byzantine: 1 },
    ] {
        let weights = four_client_sim(agg, plan())
            .run()
            .expect("run")
            .global_weights;
        assert!(
            weights.iter().all(Matrix::is_finite),
            "{agg:?} let NaNs through"
        );
    }
}

#[test]
fn dropout_every_round_still_completes_and_learns() {
    let plan = FaultPlan::new(5).with_min_participants(3).with_rule(
        "z111",
        RoundSelector::Every,
        FaultKind::DropOut,
    );
    let mut sim = four_client_sim(Aggregator::FedAvg, Some(plan));
    let out = sim.run().expect("run survives a permanent drop-out");
    for r in &out.rounds {
        assert_eq!(r.participants, vec!["z102", "z105", "z108"]);
        assert_eq!(r.faults.len(), 1);
        assert_eq!(r.faults[0].outcome, FaultOutcome::Dropped);
    }
    // The surviving majority still trains a useful global model.
    let test = sine_samples(32, 0.0);
    let mut init: Sequential = forecaster_model(4, 3);
    let before = init.evaluate(&test, Loss::Mse);
    let mut global = sim.model_with_weights(&out.global_weights).expect("fits");
    let after = global.evaluate(&test, Loss::Mse);
    assert!(after < before, "before={before} after={after}");
}

#[test]
fn min_participants_is_honoured_when_the_fault_model_starves_a_round() {
    let mut plan = FaultPlan::new(5).with_min_participants(2);
    for id in ["z105", "z108", "z111"] {
        plan = plan.with_rule(id, RoundSelector::Every, FaultKind::DropOut);
    }
    let mut sim = four_client_sim(Aggregator::FedAvg, Some(plan));
    assert_eq!(
        sim.run().unwrap_err(),
        FederatedError::InsufficientParticipants {
            round: 0,
            survivors: 1,
            required: 2,
        }
    );
}

#[test]
fn stragglers_within_the_timeout_only_slow_the_round_down() {
    let clean = four_client_sim(Aggregator::FedAvg, None)
        .run()
        .expect("clean");
    let plan = FaultPlan::new(5).with_timeout(60.0).with_rule(
        "z105",
        RoundSelector::Every,
        FaultKind::Straggler {
            delay_seconds: 20.0,
        },
    );
    let out = four_client_sim(Aggregator::FedAvg, Some(plan))
        .run()
        .expect("straggler run");
    // Same weights — a slow-but-in-time client changes nothing numeric.
    assert_eq!(out.global_weights, clean.global_weights);
    // But the simulated distributed clock pays 20 s per round. (Compare
    // against the injected delay, not the clean run's wall clock — real
    // training seconds jitter between runs.)
    assert!(out.simulated_distributed_seconds() >= 2.0 * 20.0);
    for r in &out.rounds {
        assert_eq!(r.client_extra_seconds[1], 20.0);
        assert!(matches!(
            r.faults[0].outcome,
            FaultOutcome::Delayed {
                delay_seconds: 20.0
            }
        ));
    }
}

#[test]
fn stragglers_past_the_timeout_are_cut_from_aggregation() {
    let plan = FaultPlan::new(5).with_timeout(5.0).with_rule(
        "z105",
        RoundSelector::Every,
        FaultKind::Straggler {
            delay_seconds: 50.0,
        },
    );
    let out = four_client_sim(Aggregator::FedAvg, Some(plan))
        .run()
        .expect("timeout run");
    for r in &out.rounds {
        assert_eq!(r.participants, vec!["z102", "z108", "z111"]);
        assert_eq!(r.timeout_wait_seconds, 5.0);
        assert!(matches!(
            r.faults[0].outcome,
            FaultOutcome::TimedOut {
                delay_seconds: 50.0,
                timeout_seconds: 5.0,
            }
        ));
    }
    // The server waited out the timeout even though it discarded the update.
    assert!(out.simulated_distributed_seconds() >= 2.0 * 5.0);
}

#[test]
fn retry_accounting_matches_the_transport_meter() {
    let clean = four_client_sim(Aggregator::FedAvg, None)
        .run()
        .expect("clean");
    let plan = FaultPlan::new(5)
        .with_retry(3, 2.0)
        .with_rule(
            "z102",
            RoundSelector::Every,
            FaultKind::Transient { failures: 2 },
        )
        .with_rule(
            "z108",
            RoundSelector::Only { round: 1 },
            FaultKind::Transient { failures: 9 },
        );
    let out = four_client_sim(Aggregator::FedAvg, Some(plan))
        .run()
        .expect("flaky run");
    // Cross-check the transport meter against the fault log: every retry
    // the log claims must appear in the channel totals, and vice versa.
    let logged_retries: usize = out
        .fault_events()
        .map(|e| match e.outcome {
            FaultOutcome::Recovered {
                failed_attempts, ..
            } => failed_attempts,
            // An exhausted client burned its full retry budget; its
            // failed_attempts counts the initial send too.
            FaultOutcome::RetriesExhausted { failed_attempts } => failed_attempts - 1,
            _ => 0,
        })
        .sum();
    assert!(logged_retries > 0);
    assert_eq!(out.traffic.retries, logged_retries);
    // First-attempt traffic is exactly the clean protocol's traffic.
    assert_eq!(
        out.traffic.messages - out.traffic.retries,
        clean.traffic.messages
    );
    // z102 recovers every round (2 retries each); z108 exhausts a budget
    // of 3 in round 1. 2 + 2 + 3 = 7 retries.
    assert_eq!(out.traffic.retries, 7);
    // Recovered uploads are aggregated; exhausted ones are not.
    assert_eq!(out.rounds[0].participants.len(), 4);
    assert_eq!(out.rounds[1].participants, vec!["z102", "z105", "z111"]);
    // Backoff: 2 failures at base 2 s → 2·(2² − 1) = 6 s of extra wait.
    assert_eq!(out.rounds[0].client_extra_seconds[0], 6.0);
}

#[test]
fn fault_logs_round_trip_through_the_wire_format() {
    use evfad_core::federated::wire::{decode_fault_log, encode_fault_log};
    let out = four_client_sim(Aggregator::Median, Some(kitchen_sink_plan()))
        .run()
        .expect("run");
    let events: Vec<_> = out.fault_events().cloned().collect();
    assert!(!events.is_empty());
    let encoded = encode_fault_log(&events);
    let decoded = decode_fault_log(&encoded).expect("decode");
    assert_eq!(events, decoded);
}

#[test]
fn trimmed_mean_contains_a_double_nan_flood_at_its_exact_budget() {
    // Two of four clients flood every round — exactly the 2 * trim = 2
    // non-finite values TrimmedMean { trim: 1 } can absorb per coordinate.
    // The floods consume the whole trim capacity and the aggregate is the
    // mean of the two honest clients, finite both rounds.
    let plan = |floods: &[&str]| {
        let mut p = FaultPlan::new(9);
        for id in floods {
            p = p.with_rule(
                *id,
                RoundSelector::Every,
                FaultKind::Corrupt {
                    corruption: Corruption::NanFlood,
                },
            );
        }
        Some(p)
    };
    let out = four_client_sim(Aggregator::TrimmedMean { trim: 1 }, plan(&["z105", "z108"]))
        .run()
        .expect("double flood must be contained");
    assert!(
        out.global_weights.iter().all(Matrix::is_finite),
        "two NaN floods exceeded containment despite fitting the budget"
    );
    assert_eq!(out.rounds.len(), 2);
    // A third flooder pushes past the budget: the loop must refuse with an
    // aggregation error instead of averaging a poisoned middle slice.
    let err = four_client_sim(
        Aggregator::TrimmedMean { trim: 1 },
        plan(&["z102", "z105", "z108"]),
    )
    .run()
    .unwrap_err();
    assert!(
        matches!(&err, FederatedError::Aggregation(m) if m.contains("containment budget")),
        "expected a containment-budget error, got {err}"
    );
}

// ---------------------------------------------------------------------------
// Chaos over real sockets: the same FaultPlan drives the live TCP path.
// Connection loss mid-upload is a *real* connection the server kills; the
// client's retry/backoff is the same `faults` machinery the simulation
// accounts — and the digests must agree byte for byte.
// ---------------------------------------------------------------------------

/// The four-station roster as (id, phase) pairs, matching
/// [`four_client_sim`]'s registration order.
const FOUR_STATIONS: [(&str, f64); 4] =
    [("z102", 0.0), ("z105", 0.8), ("z108", 1.6), ("z111", 2.4)];

/// [`four_client_sim`]'s config, for driving the socket path with the
/// same schedule.
fn four_client_config(faults: Option<FaultPlan>) -> FederatedConfig {
    FederatedConfig {
        rounds: 2,
        epochs_per_round: 2,
        batch_size: 16,
        parallel: false,
        faults,
        ..FederatedConfig::default()
    }
}

/// Runs the federation over localhost TCP: server on an ephemeral port,
/// one thread per client. Returns the server's result and every
/// client's, in roster order — chaos tests assert on both sides.
#[allow(clippy::type_complexity)]
fn run_over_sockets(
    config: FederatedConfig,
    roster: &[(&str, f64)],
) -> (
    Result<FederatedOutcome, FederatedError>,
    Vec<Result<Vec<Matrix>, FederatedError>>,
) {
    let ids: Vec<String> = roster.iter().map(|(id, _)| id.to_string()).collect();
    let mut server = SocketServer::bind(
        "127.0.0.1:0",
        forecaster_model(4, 3),
        SocketServerConfig::new(config, ids),
    )
    .expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let client_threads: Vec<_> = roster
        .iter()
        .map(|&(id, phase)| {
            let id = id.to_string();
            std::thread::spawn(move || {
                SocketClient { time_dilation: 0.0 }.run(
                    addr,
                    id,
                    forecaster_model(4, 3),
                    sine_samples(32, phase),
                )
            })
        })
        .collect();
    let outcome = server_thread.join().expect("server thread panicked");
    let clients = client_threads
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    (outcome, clients)
}

/// Transient faults over TCP are real dropped connections: the server
/// kills the upload socket mid-round, the client re-dials through the
/// plan's retry/backoff, and the run's digest — retries, extra seconds,
/// participants, weights — is byte-identical to the simulation's.
#[test]
fn transient_faults_over_sockets_ride_the_real_retry_path() {
    let plan = || {
        FaultPlan::new(5)
            .with_retry(3, 2.0)
            .with_rule(
                "z102",
                RoundSelector::Every,
                FaultKind::Transient { failures: 2 },
            )
            .with_rule(
                "z108",
                RoundSelector::Only { round: 1 },
                FaultKind::Transient { failures: 9 },
            )
    };
    let (server, clients) = run_over_sockets(four_client_config(Some(plan())), &FOUR_STATIONS);
    let out = server.expect("flaky socket run");
    let sim_out = four_client_sim(Aggregator::FedAvg, Some(plan()))
        .run()
        .expect("flaky simulated run");
    assert_eq!(
        serde_json::to_string(&out.digest()).unwrap(),
        serde_json::to_string(&sim_out.digest()).unwrap()
    );
    // Every retry the meter counts was a real re-dialed connection:
    // z102 recovers each round (2 kills each), z108 exhausts its budget
    // of 3 in round 1. 2 + 2 + 3 = 7 killed uploads.
    assert_eq!(out.traffic.retries, 7);
    // Backoff is accounted, not slept (time_dilation = 0): two failures
    // at base 2 s cost z102 2·(2² − 1) = 6 simulated seconds.
    assert_eq!(out.rounds[0].client_extra_seconds[0], 6.0);
    // The exhausted client is cut from round 1's aggregation...
    assert_eq!(out.rounds[1].participants, vec!["z102", "z105", "z111"]);
    // ...but exhaustion is graceful degradation, not a client crash:
    // everyone still completes and leaves with the final global model.
    for client in clients {
        assert_eq!(
            client.expect("client survives retry exhaustion"),
            out.global_weights
        );
    }
}

/// A starved round fails identically on both paths — same
/// `InsufficientParticipants` error, same round, same counts — and the
/// server tells every live client why via `Abort` before going down.
#[test]
fn starved_rounds_abort_identically_over_sockets() {
    let plan = || {
        let mut plan = FaultPlan::new(5).with_min_participants(2);
        for id in ["z105", "z108", "z111"] {
            plan = plan.with_rule(id, RoundSelector::Every, FaultKind::DropOut);
        }
        plan
    };
    let (server, clients) = run_over_sockets(four_client_config(Some(plan())), &FOUR_STATIONS);
    let socket_err = server.unwrap_err();
    let sim_err = four_client_sim(Aggregator::FedAvg, Some(plan()))
        .run()
        .unwrap_err();
    assert_eq!(socket_err, sim_err);
    assert_eq!(
        socket_err,
        FederatedError::InsufficientParticipants {
            round: 0,
            survivors: 1,
            required: 2,
        }
    );
    for client in clients {
        let err = client.unwrap_err();
        assert!(matches!(&err, FederatedError::Transport { .. }));
        assert!(
            err.to_string().contains("starved"),
            "client should learn why the run died, got: {err}"
        );
    }
}

/// The kitchen-sink plan — drop-outs, stragglers, corruption, flaky
/// uplinks, a probabilistic rule — reproduces its digest over TCP.
/// Corruption is applied client-side before encoding, so the poisoned
/// bytes genuinely cross the wire; the gate does not re-apply it.
#[test]
fn the_kitchen_sink_plan_reproduces_its_digest_over_sockets() {
    let (server, clients) = run_over_sockets(
        four_client_config(Some(kitchen_sink_plan())),
        &FOUR_STATIONS,
    );
    let out = server.expect("kitchen-sink socket run");
    let sim_out = four_client_sim(Aggregator::FedAvg, Some(kitchen_sink_plan()))
        .run()
        .expect("kitchen-sink simulated run");
    assert_eq!(
        serde_json::to_string(&out.digest()).unwrap(),
        serde_json::to_string(&sim_out.digest()).unwrap()
    );
    assert!(
        out.fault_events().next().is_some(),
        "the kitchen-sink plan must fire over sockets too"
    );
    for client in clients {
        assert_eq!(client.expect("chaotic client run"), out.global_weights);
    }
}
