//! Cross-crate integration tests of federated-learning invariants.

use evfad_core::data::{DatasetConfig, ShenzhenGenerator};
use evfad_core::federated::{Aggregator, FederatedConfig, FederatedSimulation, LocalUpdate};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::nn::Loss;
use evfad_core::tensor::Matrix;

fn prepared_clients(hours: usize, seed: u64) -> Vec<PreparedClient> {
    ShenzhenGenerator::new(DatasetConfig::small(hours, seed))
        .generate_all()
        .iter()
        .map(|c| PreparedClient::prepare(c.zone.label(), &c.demand, 24, 0.8).expect("prepare"))
        .collect()
}

#[test]
fn fedavg_global_is_convex_combination_of_client_weights() {
    let prepared = prepared_clients(360, 3);
    let cfg = FederatedConfig {
        rounds: 1,
        epochs_per_round: 1,
        parallel: false,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(build_forecaster(6, 0.01, 1), cfg);
    for p in &prepared {
        sim.add_client(p.label.clone(), p.train.clone());
    }
    let outcome = sim.run().expect("run");
    // Every coordinate of the global model lies within [min, max] of the
    // client weights at that coordinate.
    let client_weights: Vec<Vec<Matrix>> =
        sim.clients().iter().map(|c| c.model().weights()).collect();
    for (t, g) in outcome.global_weights.iter().enumerate() {
        for flat in 0..g.len() {
            let vals: Vec<f64> = client_weights
                .iter()
                .map(|w| w[t].as_slice()[flat])
                .collect();
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let v = g.as_slice()[flat];
            assert!(
                v >= lo - 1e-9 && v <= hi + 1e-9,
                "global weight {v} outside client hull [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn federated_training_beats_untrained_baseline_on_every_client() {
    let prepared = prepared_clients(720, 4);
    let cfg = FederatedConfig {
        rounds: 2,
        epochs_per_round: 3,
        parallel: false,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(build_forecaster(8, 0.01, 2), cfg);
    for p in &prepared {
        sim.add_client(p.label.clone(), p.train.clone());
    }
    sim.run().expect("run");
    for (i, p) in prepared.iter().enumerate() {
        let mut fresh = build_forecaster(8, 0.01, 2);
        let untrained = fresh.evaluate(&p.test, Loss::Mse);
        let trained = sim.clients_mut()[i]
            .model_mut()
            .evaluate(&p.test, Loss::Mse);
        assert!(
            trained < untrained,
            "client {}: trained {trained} vs untrained {untrained}",
            p.label
        );
    }
}

#[test]
fn robust_aggregators_survive_a_poisoned_update_but_fedavg_does_not() {
    let honest = |id: &str, v: f64| LocalUpdate {
        client_id: id.into(),
        weights: vec![Matrix::filled(4, 4, v)],
        sample_count: 100,
        train_loss: 0.0,
        duration: std::time::Duration::ZERO,
        simulated_extra_seconds: 0.0,
    };
    let mut updates = vec![
        honest("a", 1.0),
        honest("b", 1.1),
        honest("c", 0.9),
        honest("d", 1.05),
    ];
    updates.push(honest("evil", 1e6));

    let fedavg = Aggregator::FedAvg.aggregate(&updates).unwrap();
    assert!(
        fedavg[0][(0, 0)] > 1000.0,
        "FedAvg should absorb the poison"
    );

    for agg in [
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 1 },
        Aggregator::Krum { byzantine: 1 },
    ] {
        let global = agg.aggregate(&updates).unwrap();
        let v = global[0][(0, 0)];
        assert!(
            (0.8..=1.2).contains(&v),
            "{} failed to reject the poison: {v}",
            agg.name()
        );
    }
}

#[test]
fn one_round_zero_extra_epochs_reduces_to_plain_averaging() {
    // With identical initial weights and zero-difference training (no
    // local epochs possible — use 1 epoch on identical data), all clients
    // produce identical updates and FedAvg returns exactly those weights.
    let prepared = prepared_clients(360, 8);
    let shared = prepared[0].train.clone();
    let cfg = FederatedConfig {
        rounds: 1,
        epochs_per_round: 1,
        parallel: false,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(build_forecaster(5, 0.01, 4), cfg);
    sim.add_client("a", shared.clone());
    sim.add_client("b", shared.clone());
    sim.add_client("c", shared);
    let outcome = sim.run().expect("run");
    let wa = sim.clients()[0].model().weights();
    for (g, l) in outcome.global_weights.iter().zip(&wa) {
        for (x, y) in g.as_slice().iter().zip(l.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}

#[test]
fn simulated_distributed_time_is_bounded_by_wall_clock_sum() {
    let prepared = prepared_clients(360, 5);
    let cfg = FederatedConfig {
        rounds: 2,
        epochs_per_round: 1,
        parallel: false,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(build_forecaster(6, 0.01, 9), cfg);
    for p in &prepared {
        sim.add_client(p.label.clone(), p.train.clone());
    }
    let outcome = sim.run().expect("run");
    let simulated = outcome.simulated_distributed_seconds();
    let serial_sum: f64 = outcome
        .rounds
        .iter()
        .flat_map(|r| r.client_seconds.iter())
        .sum();
    assert!(simulated > 0.0);
    assert!(
        simulated <= serial_sum + 1e-9,
        "{simulated} vs {serial_sum}"
    );
}
