//! Cross-crate integration test: the full pipeline at smoke scale.
//!
//! generate → inject DDoS → detect → mitigate → federated train → evaluate.

use evfad_core::anomaly::{AnomalyFilter, DetectionReport, FilterConfig};
use evfad_core::attack::{DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::forecast::{run_study, Architecture, Scale, Scenario, StudyConfig};
use evfad_core::timeseries::MinMaxScaler;

fn smoke_config(seed: u64) -> StudyConfig {
    let mut cfg = StudyConfig::at_scale(Scale::Small, seed);
    cfg.dataset.timestamps = 480;
    cfg.lstm_units = 8;
    cfg.rounds = 1;
    cfg.epochs_per_round = 2;
    cfg.filter.encoder_units = (8, 4);
    cfg.filter.epochs = 4;
    cfg.filter.train_stride = 3;
    cfg
}

#[test]
fn full_study_covers_every_cell_of_the_design() {
    let report = run_study(&smoke_config(1)).expect("study");
    // Four (scenario, architecture) cells, three clients each.
    assert_eq!(report.scenarios.len(), 4);
    for r in &report.scenarios {
        assert_eq!(r.per_client.len(), 3);
        assert!(r.train_seconds > 0.0);
        for c in &r.per_client {
            assert!(c.mae.is_finite() && c.mae >= 0.0);
            assert!(c.rmse >= c.mae);
            assert!(c.r2 <= 1.0);
        }
    }
    // Detection ran for each client and the counts pool correctly.
    assert_eq!(report.detection.len(), 3);
    let pooled: usize = report.detection.iter().map(|d| d.report.total()).sum();
    assert_eq!(report.overall_detection.total(), pooled);
    // Fig. 2 series are aligned.
    let n = report.fig2.actual.len();
    assert!(n > 0);
    assert_eq!(report.fig2.clean_pred.len(), n);
    assert_eq!(report.fig2.attacked_pred.len(), n);
    assert_eq!(report.fig2.filtered_pred.len(), n);
    assert_eq!(report.fig2.indices.len(), n);
}

#[test]
fn filtering_recovers_attack_damage_end_to_end() {
    // Deterministic pipeline-level check, independent of model training:
    // the filtered series must be closer to the clean series than the
    // attacked one is.
    let client = ShenzhenGenerator::new(DatasetConfig::small(720, 9)).generate_zone(Zone::Z102);
    let outcome = DdosInjector::new(DdosConfig::default()).inject(&client.demand, 5);
    let scaler = MinMaxScaler::fit(&outcome.series).expect("scaler");
    let mut filter = AnomalyFilter::new(FilterConfig::fast(24));
    filter
        .fit(&scaler.transform(&client.demand))
        .expect("filter fit");
    let detection = filter
        .try_detect(&scaler.transform(&outcome.series))
        .expect("detect");
    let filtered = filter
        .filter_anomalies(&outcome.series, &detection.flags)
        .expect("mitigate");

    let damage = |s: &[f64]| -> f64 {
        s.iter()
            .zip(&client.demand)
            .map(|(a, c)| (a - c).abs())
            .sum()
    };
    let attacked_damage = damage(&outcome.series);
    let filtered_damage = damage(&filtered);
    assert!(attacked_damage > 0.0);
    assert!(
        filtered_damage < attacked_damage * 0.8,
        "filtered {filtered_damage} vs attacked {attacked_damage}"
    );

    // Detection quality floor at smoke scale: far better than chance.
    let report = DetectionReport::from_flags(&outcome.labels, &detection.flags);
    assert!(report.precision() > 0.5, "precision {}", report.precision());
    assert!(report.recall() > 0.2, "recall {}", report.recall());
    assert!(
        report.false_positive_rate() < 0.10,
        "FPR {}",
        report.false_positive_rate()
    );
}

#[test]
fn study_is_deterministic_per_seed() {
    let a = run_study(&smoke_config(7)).expect("study a");
    let b = run_study(&smoke_config(7)).expect("study b");
    for (ra, rb) in a.scenarios.iter().zip(&b.scenarios) {
        assert_eq!(ra.scenario, rb.scenario);
        for (ca, cb) in ra.per_client.iter().zip(&rb.per_client) {
            assert!(
                (ca.r2 - cb.r2).abs() < 1e-12,
                "nondeterministic R² for {}",
                ca.zone
            );
        }
    }
    assert_eq!(a.overall_detection, b.overall_detection);
}

#[test]
fn different_seeds_give_different_data_but_same_structure() {
    let a = run_study(&smoke_config(11)).expect("study");
    let b = run_study(&smoke_config(12)).expect("study");
    assert_eq!(a.scenarios.len(), b.scenarios.len());
    let ra = a
        .result(Scenario::Clean, Architecture::Federated)
        .unwrap()
        .per_client[0]
        .r2;
    let rb = b
        .result(Scenario::Clean, Architecture::Federated)
        .unwrap()
        .per_client[0]
        .r2;
    assert_ne!(ra, rb);
}
