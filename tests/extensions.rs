//! Integration tests for the extension subsystems: online detection, wire
//! format + compression interplay, analysis tools on generated data, and
//! episode-level metrics on real injections.

use evfad_core::anomaly::{EpisodeReport, FilterConfig, OnlineDetector};
use evfad_core::attack::{DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::federated::compression::QuantizedUpdate;
use evfad_core::federated::wire;
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::timeseries::analysis::{autocorrelation, decompose};
use evfad_core::timeseries::MinMaxScaler;

#[test]
fn generated_zones_have_daily_structure() {
    let data = ShenzhenGenerator::new(DatasetConfig::small(24 * 45, 11)).generate_all();
    for client in &data {
        let acf = autocorrelation(&client.demand, 26).expect("acf");
        assert!(
            acf[24] > 0.4,
            "zone {} lacks daily autocorrelation: {}",
            client.zone.label(),
            acf[24]
        );
        let d = decompose(&client.demand, 24).expect("decompose");
        assert!(
            d.seasonal_strength() > 0.2,
            "zone {} seasonal strength {}",
            client.zone.label(),
            d.seasonal_strength()
        );
    }
}

#[test]
fn online_detector_agrees_with_batch_on_strong_attacks() {
    let client = ShenzhenGenerator::new(DatasetConfig::small(700, 5)).generate_zone(Zone::Z102);
    let boundary = 560;
    let scaler = MinMaxScaler::fit(&client.demand[..boundary]).expect("scaler");
    let train_scaled = scaler.transform(&client.demand[..boundary]);

    let outcome = DdosInjector::new(DdosConfig::default()).inject(&client.demand, 3);
    let stream_scaled = scaler.transform(&outcome.series[boundary..]);

    let mut online =
        OnlineDetector::fit(FilterConfig::fast(24), &train_scaled, false).expect("online fit");
    let decisions = online.push_all(&stream_scaled);
    assert_eq!(decisions.len(), stream_scaled.len());

    // Strongly attacked streamed points should be flagged more often than
    // normal streamed points.
    let mut attacked_flagged = 0usize;
    let mut attacked_total = 0usize;
    let mut normal_flagged = 0usize;
    let mut normal_total = 0usize;
    for (i, d) in decisions.iter().enumerate() {
        let t = boundary + i;
        if outcome.labels[t] {
            attacked_total += 1;
            if d.anomalous {
                attacked_flagged += 1;
            }
        } else {
            normal_total += 1;
            if d.anomalous {
                normal_flagged += 1;
            }
        }
    }
    if attacked_total > 0 && normal_total > 0 {
        let attacked_rate = attacked_flagged as f64 / attacked_total as f64;
        let normal_rate = normal_flagged as f64 / normal_total as f64;
        assert!(
            attacked_rate > normal_rate + 0.1,
            "online detector not discriminating: attacked {attacked_rate:.2} vs normal {normal_rate:.2}"
        );
    }
}

#[test]
fn episode_metrics_on_real_injection() {
    let client = ShenzhenGenerator::new(DatasetConfig::small(900, 9)).generate_zone(Zone::Z105);
    let outcome = DdosInjector::new(DdosConfig::default()).inject(&client.demand, 4);
    // A perfect detector detects every episode with zero false alarms.
    let episodes: Vec<(usize, usize)> = outcome.episodes.iter().map(|e| (e.start, e.end)).collect();
    let perfect = EpisodeReport::from_episodes(&episodes, &outcome.labels, 0.5);
    assert_eq!(perfect.detected, perfect.episodes);
    assert_eq!(perfect.false_alarm_events, 0);
    // A blind detector detects none.
    let blind = EpisodeReport::from_episodes(&episodes, &vec![false; outcome.labels.len()], 0.1);
    assert_eq!(blind.detected, 0);
}

#[test]
fn wire_and_quantization_compose() {
    let model = build_forecaster(12, 0.001, 17);
    let weights = model.weights();

    // Wire round trip is exact.
    let blob = wire::encode_weights(&weights);
    assert_eq!(wire::decode_weights(&blob).expect("decode"), weights);

    // Quantized + wire is ~8x smaller than raw JSON and still close.
    let quant = QuantizedUpdate::quantize(&weights);
    let deq = quant.dequantize();
    let wire_exact = wire::encoded_size(&weights);
    assert!(
        quant.byte_size() < wire_exact / 6,
        "quantization not paying off"
    );
    for (a, b) in weights.iter().zip(&deq) {
        let max_err = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0_f64, f64::max);
        // Glorot-initialised weights live in (-1, 1): 8-bit quantization
        // error stays well under 1% of the range.
        assert!(max_err < 0.01, "quantization error {max_err}");
    }
}

#[test]
fn csv_round_trip_through_disk_format() {
    let client = ShenzhenGenerator::new(DatasetConfig::small(120, 21)).generate_zone(Zone::Z108);
    let text = evfad_core::data::csv::to_csv(&client);
    let restored = evfad_core::data::csv::from_csv(&text, Zone::Z108).expect("parse");
    assert_eq!(restored.demand.len(), client.demand.len());
    let max_err = client
        .demand
        .iter()
        .zip(&restored.demand)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert_eq!(max_err, 0.0, "CSV round trip must be lossless");
}
