//! Cross-crate property-based tests.

use evfad_core::anomaly::{merge_segments, MitigationStrategy};
use evfad_core::attack::{DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::federated::{Aggregator, LocalUpdate};
use evfad_core::tensor::Matrix;
use evfad_core::timeseries::MinMaxScaler;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Attack injection only ever touches labelled points, and labels are
    /// exactly the union of the reported episodes.
    #[test]
    fn injection_is_label_consistent(seed in 0u64..500, hours in 100usize..800) {
        let client = ShenzhenGenerator::new(DatasetConfig::small(hours, seed))
            .generate_zone(Zone::Z105);
        let out = DdosInjector::new(DdosConfig::default()).inject(&client.demand, seed);
        prop_assert_eq!(out.series.len(), client.demand.len());
        for i in 0..out.series.len() {
            if out.labels[i] {
                prop_assert!(out.series[i] >= client.demand[i]);
            } else {
                prop_assert_eq!(out.series[i], client.demand[i]);
            }
        }
        let mut from_episodes = vec![false; out.series.len()];
        for ep in &out.episodes {
            for f in from_episodes.iter_mut().take(ep.end).skip(ep.start) {
                *f = true;
            }
        }
        prop_assert_eq!(from_episodes, out.labels);
    }

    /// Mitigation with any strategy keeps the series finite, the same
    /// length, and untouched outside the merged mask.
    #[test]
    fn mitigation_preserves_structure(
        seed in 0u64..200,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            MitigationStrategy::Linear,
            MitigationStrategy::SeasonalNaive,
            MitigationStrategy::HoldLast,
        ][strategy_idx];
        let client = ShenzhenGenerator::new(DatasetConfig::small(300, seed))
            .generate_zone(Zone::Z108);
        let out = DdosInjector::new(DdosConfig::default()).inject(&client.demand, seed);
        let merged = merge_segments(&out.labels, 2);
        let fixed = strategy.apply(&out.series, &merged).unwrap();
        prop_assert_eq!(fixed.len(), out.series.len());
        for i in 0..fixed.len() {
            prop_assert!(fixed[i].is_finite());
            if !merged[i] {
                prop_assert_eq!(fixed[i], out.series[i]);
            }
        }
    }

    /// Scaling then inverse-scaling an attacked series is lossless, even
    /// though spikes exceed the clean range.
    #[test]
    fn scaler_round_trips_attacked_series(seed in 0u64..200) {
        let client = ShenzhenGenerator::new(DatasetConfig::small(400, seed))
            .generate_zone(Zone::Z102);
        let out = DdosInjector::new(DdosConfig::default()).inject(&client.demand, seed);
        let scaler = MinMaxScaler::fit(&client.demand).unwrap();
        let back = scaler.inverse_transform(&scaler.transform(&out.series));
        for (a, b) in out.series.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// FedAvg lies in the per-coordinate convex hull of the updates, for
    /// arbitrary positive sample counts.
    #[test]
    fn fedavg_within_hull(
        va in -10.0f64..10.0,
        vb in -10.0f64..10.0,
        vc in -10.0f64..10.0,
        na in 1usize..1000,
        nb in 1usize..1000,
        nc in 1usize..1000,
    ) {
        let mk = |id: &str, v: f64, n: usize| LocalUpdate {
            client_id: id.into(),
            weights: vec![Matrix::filled(2, 3, v)],
            sample_count: n,
            train_loss: 0.0,
            duration: std::time::Duration::ZERO,
        };
        let ups = [mk("a", va, na), mk("b", vb, nb), mk("c", vc, nc)];
        let g = Aggregator::FedAvg.aggregate(&ups).unwrap();
        let lo = va.min(vb).min(vc);
        let hi = va.max(vb).max(vc);
        for x in g[0].as_slice() {
            prop_assert!(*x >= lo - 1e-9 && *x <= hi + 1e-9);
        }
    }

    /// Robust aggregators agree with FedAvg when all updates are identical.
    #[test]
    fn aggregators_agree_on_identical_updates(v in -5.0f64..5.0) {
        let mk = |id: &str| LocalUpdate {
            client_id: id.into(),
            weights: vec![Matrix::filled(3, 2, v)],
            sample_count: 10,
            train_loss: 0.0,
            duration: std::time::Duration::ZERO,
        };
        let ups = [mk("a"), mk("b"), mk("c"), mk("d")];
        let favg = Aggregator::FedAvg.aggregate(&ups).unwrap();
        for agg in [
            Aggregator::Median,
            Aggregator::TrimmedMean { trim: 1 },
            Aggregator::Krum { byzantine: 1 },
        ] {
            let g = agg.aggregate(&ups).unwrap();
            for (x, y) in g[0].as_slice().iter().zip(favg[0].as_slice()) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    /// merge_segments is monotone: it only ever adds flags, and wider gaps
    /// merge supersets of narrower gaps.
    #[test]
    fn merge_segments_monotone(mask in prop::collection::vec(any::<bool>(), 1..200)) {
        let narrow = merge_segments(&mask, 1);
        let wide = merge_segments(&mask, 3);
        for i in 0..mask.len() {
            if mask[i] {
                prop_assert!(narrow[i]);
            }
            if narrow[i] {
                prop_assert!(wide[i]);
            }
        }
    }
}
