//! Cross-crate property-based tests.

use evfad_core::anomaly::{merge_segments, MitigationStrategy};
use evfad_core::attack::{DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::federated::{Aggregator, FederatedConfig, FederatedSimulation, LocalUpdate};
use evfad_core::nn::{forecaster_model, Sample};
use evfad_core::tensor::{parallel, Matrix};
use evfad_core::timeseries::MinMaxScaler;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Attack injection only ever touches labelled points, and labels are
    /// exactly the union of the reported episodes.
    #[test]
    fn injection_is_label_consistent(seed in 0u64..500, hours in 100usize..800) {
        let client = ShenzhenGenerator::new(DatasetConfig::small(hours, seed))
            .generate_zone(Zone::Z105);
        let out = DdosInjector::new(DdosConfig::default()).inject(&client.demand, seed);
        prop_assert_eq!(out.series.len(), client.demand.len());
        for i in 0..out.series.len() {
            if out.labels[i] {
                prop_assert!(out.series[i] >= client.demand[i]);
            } else {
                prop_assert_eq!(out.series[i], client.demand[i]);
            }
        }
        let mut from_episodes = vec![false; out.series.len()];
        for ep in &out.episodes {
            for f in from_episodes.iter_mut().take(ep.end).skip(ep.start) {
                *f = true;
            }
        }
        prop_assert_eq!(from_episodes, out.labels);
    }

    /// Mitigation with any strategy keeps the series finite, the same
    /// length, and untouched outside the merged mask.
    #[test]
    fn mitigation_preserves_structure(
        seed in 0u64..200,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            MitigationStrategy::Linear,
            MitigationStrategy::SeasonalNaive,
            MitigationStrategy::HoldLast,
        ][strategy_idx];
        let client = ShenzhenGenerator::new(DatasetConfig::small(300, seed))
            .generate_zone(Zone::Z108);
        let out = DdosInjector::new(DdosConfig::default()).inject(&client.demand, seed);
        let merged = merge_segments(&out.labels, 2);
        let fixed = strategy.apply(&out.series, &merged).unwrap();
        prop_assert_eq!(fixed.len(), out.series.len());
        for i in 0..fixed.len() {
            prop_assert!(fixed[i].is_finite());
            if !merged[i] {
                prop_assert_eq!(fixed[i], out.series[i]);
            }
        }
    }

    /// Scaling then inverse-scaling an attacked series is lossless, even
    /// though spikes exceed the clean range.
    #[test]
    fn scaler_round_trips_attacked_series(seed in 0u64..200) {
        let client = ShenzhenGenerator::new(DatasetConfig::small(400, seed))
            .generate_zone(Zone::Z102);
        let out = DdosInjector::new(DdosConfig::default()).inject(&client.demand, seed);
        let scaler = MinMaxScaler::fit(&client.demand).unwrap();
        let back = scaler.inverse_transform(&scaler.transform(&out.series));
        for (a, b) in out.series.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// FedAvg lies in the per-coordinate convex hull of the updates, for
    /// arbitrary positive sample counts.
    #[test]
    fn fedavg_within_hull(
        va in -10.0f64..10.0,
        vb in -10.0f64..10.0,
        vc in -10.0f64..10.0,
        na in 1usize..1000,
        nb in 1usize..1000,
        nc in 1usize..1000,
    ) {
        let mk = |id: &str, v: f64, n: usize| LocalUpdate {
            client_id: id.into(),
            weights: vec![Matrix::filled(2, 3, v)],
            sample_count: n,
            train_loss: 0.0,
            duration: std::time::Duration::ZERO,
        simulated_extra_seconds: 0.0,
        };
        let ups = [mk("a", va, na), mk("b", vb, nb), mk("c", vc, nc)];
        let g = Aggregator::FedAvg.aggregate(&ups).unwrap();
        let lo = va.min(vb).min(vc);
        let hi = va.max(vb).max(vc);
        for x in g[0].as_slice() {
            prop_assert!(*x >= lo - 1e-9 && *x <= hi + 1e-9);
        }
    }

    /// Robust aggregators agree with FedAvg when all updates are identical.
    #[test]
    fn aggregators_agree_on_identical_updates(v in -5.0f64..5.0) {
        let mk = |id: &str| LocalUpdate {
            client_id: id.into(),
            weights: vec![Matrix::filled(3, 2, v)],
            sample_count: 10,
            train_loss: 0.0,
            duration: std::time::Duration::ZERO,
        simulated_extra_seconds: 0.0,
        };
        let ups = [mk("a"), mk("b"), mk("c"), mk("d")];
        let favg = Aggregator::FedAvg.aggregate(&ups).unwrap();
        for agg in [
            Aggregator::Median,
            Aggregator::TrimmedMean { trim: 1 },
            Aggregator::Krum { byzantine: 1 },
        ] {
            let g = agg.aggregate(&ups).unwrap();
            for (x, y) in g[0].as_slice().iter().zip(favg[0].as_slice()) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    /// merge_segments is monotone: it only ever adds flags, and wider gaps
    /// merge supersets of narrower gaps.
    #[test]
    fn merge_segments_monotone(mask in prop::collection::vec(any::<bool>(), 1..200)) {
        let narrow = merge_segments(&mask, 1);
        let wide = merge_segments(&mask, 3);
        for i in 0..mask.len() {
            if mask[i] {
                prop_assert!(narrow[i]);
            }
            if narrow[i] {
                prop_assert!(wide[i]);
            }
        }
    }

    /// The parallel compute layer is bitwise deterministic: every kernel
    /// produces the same bits whether it runs serial or split across the
    /// worker pool, for arbitrary shapes (including 1×n and n×1).
    #[test]
    fn parallel_kernels_bitwise_equal_serial(
        rows in 1usize..48,
        inner in 1usize..48,
        cols in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mix = |i: usize, j: usize, salt: u64| {
            (((seed ^ salt).wrapping_add((i * 131 + j * 17) as u64)) as f64 * 0.6180339887).sin()
        };
        let a = Matrix::from_fn(rows, inner, |i, j| mix(i, j, 1));
        let b = Matrix::from_fn(inner, cols, |i, j| mix(i, j, 2));
        let c = Matrix::from_fn(rows, cols, |i, j| mix(i, j, 3));
        let d = Matrix::from_fn(cols, inner, |i, j| mix(i, j, 4));

        parallel::set_threads(1);
        let mm_s = a.matmul(&b);
        let tm_s = a.transpose_matmul(&c);
        let mt_s = a.matmul_transpose(&d);
        let tr_s = a.transpose();
        let zm_s = a.zip_map(&Matrix::from_fn(rows, inner, |i, j| mix(i, j, 5)), |x, y| x.mul_add(1.25, y));

        // Threshold 0 makes every dispatch eligible for the pool.
        parallel::set_serial_flop_threshold(0);
        parallel::set_threads(5);
        let mm_p = a.matmul(&b);
        let tm_p = a.transpose_matmul(&c);
        let mt_p = a.matmul_transpose(&d);
        let tr_p = a.transpose();
        let zm_p = a.zip_map(&Matrix::from_fn(rows, inner, |i, j| mix(i, j, 5)), |x, y| x.mul_add(1.25, y));
        parallel::set_threads(0);
        parallel::set_serial_flop_threshold(64 * 64 * 64);

        prop_assert_eq!(mm_s.as_slice(), mm_p.as_slice());
        prop_assert_eq!(tm_s.as_slice(), tm_p.as_slice());
        prop_assert_eq!(mt_s.as_slice(), mt_p.as_slice());
        prop_assert_eq!(tr_s.as_slice(), tr_p.as_slice());
        prop_assert_eq!(zm_s.as_slice(), zm_p.as_slice());
    }

    /// Tall/thin extremes: row counts far above the thread count and
    /// single-column outputs still partition correctly.
    #[test]
    fn parallel_tall_thin_bitwise_equal_serial(
        rows in 200usize..400,
        cols in 1usize..4,
        seed in 0u64..500,
    ) {
        let a = Matrix::from_fn(rows, 7, |i, j| ((seed.wrapping_add((i * 7 + j) as u64)) as f64 * 0.37).cos());
        let b = Matrix::from_fn(7, cols, |i, j| ((i * 3 + j) as f64 * 0.11).sin());
        parallel::set_threads(1);
        let serial = a.matmul(&b);
        parallel::set_serial_flop_threshold(0);
        parallel::set_threads(7);
        let par = a.matmul(&b);
        parallel::set_threads(0);
        parallel::set_serial_flop_threshold(64 * 64 * 64);
        prop_assert_eq!(serial.as_slice(), par.as_slice());
    }
}

proptest! {
    // A federated round is expensive; a few cases suffice to exercise the
    // whole train/aggregate path under both thread settings.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A full federated round is bitwise independent of the intra-op
    /// thread count: `threads = 4` reproduces `threads = 1` exactly.
    #[test]
    fn federated_round_bitwise_independent_of_threads(seed in 0u64..100) {
        let samples = |phase: f64| -> Vec<Sample> {
            (0..24)
                .map(|i| {
                    let xs: Vec<f64> = (0..6)
                        .map(|t| ((i + t) as f64 * 0.5 + phase + seed as f64 * 0.01).sin())
                        .collect();
                    Sample::new(
                        Matrix::column_vector(&xs),
                        Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
                    )
                })
                .collect()
        };
        let build = |threads: usize| {
            let cfg = FederatedConfig {
                rounds: 1,
                epochs_per_round: 1,
                batch_size: 8,
                parallel: false,
                threads,
                ..FederatedConfig::default()
            };
            let mut sim = FederatedSimulation::new(forecaster_model(3, 3), cfg);
            sim.add_client("a", samples(0.0));
            sim.add_client("b", samples(0.9));
            sim
        };
        let out_one = build(1).run().expect("threads=1 run");
        let out_four = build(4).run().expect("threads=4 run");
        parallel::set_threads(0);
        prop_assert_eq!(out_one.global_weights, out_four.global_weights);
    }
}
